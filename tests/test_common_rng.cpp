#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ecotune {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng base(7);
  Rng f1 = base.fork("node-0");
  Rng f2 = base.fork("node-0");
  Rng f3 = base.fork("node-1");
  EXPECT_EQ(f1(), f2());
  EXPECT_NE(f1(), f3());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.fork("x");
  EXPECT_EQ(a(), b());
}

TEST(Rng, NumericForkIsDeterministicAndTagKeyed) {
  Rng base(7);
  Rng f1 = base.fork(std::uint64_t{3});
  Rng f2 = base.fork(std::uint64_t{3});
  Rng f3 = base.fork(std::uint64_t{4});
  EXPECT_EQ(f1(), f2());
  EXPECT_NE(f1(), f3());
  // The numeric-tag family must not advance the parent either.
  Rng a(9), b(9);
  (void)a.fork(std::uint64_t{0});
  EXPECT_EQ(a(), b());
}

TEST(Rng, ForksWithDifferentTagsNeverShareFirstSixteenDraws) {
  // Regression guard for the task-keyed determinism convention: the
  // QLearningTuner derives one stream per episode index, so any pair of
  // distinct tags (numeric or string, including the cross-family pairs)
  // must diverge within the first 16 draws.
  Rng base(0x9173A2);
  std::vector<std::vector<std::uint64_t>> draws;
  for (std::uint64_t tag = 0; tag < 64; ++tag) {
    Rng fork = base.fork(tag);
    std::vector<std::uint64_t> sequence(16);
    for (auto& v : sequence) v = fork();
    draws.push_back(std::move(sequence));
  }
  for (std::uint64_t tag = 0; tag < 64; ++tag) {
    Rng fork = base.fork("ep-" + std::to_string(tag));
    std::vector<std::uint64_t> sequence(16);
    for (auto& v : sequence) v = fork();
    draws.push_back(std::move(sequence));
  }
  for (std::size_t i = 0; i < draws.size(); ++i) {
    for (std::size_t j = i + 1; j < draws.size(); ++j) {
      EXPECT_NE(draws[i], draws[j]) << "forks " << i << " and " << j
                                    << " produced identical first-16 draws";
    }
  }
}

TEST(Rng, UniformInRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng r(13);
  EXPECT_THROW((void)r.uniform_int(3, 2), PreconditionError);
  EXPECT_THROW((void)r.uniform_int(std::numeric_limits<std::int64_t>::max(),
                                   std::numeric_limits<std::int64_t>::min()),
               PreconditionError);
  EXPECT_EQ(r.uniform_int(5, 5), 5);  // degenerate span is fine
}

TEST(Rng, UniformIntHandlesExtremeSpans) {
  Rng r(19);
  // Full 64-bit span: the rejection loop must not spin or overflow.
  for (int i = 0; i < 100; ++i)
    (void)r.uniform_int(std::numeric_limits<std::int64_t>::min(),
                        std::numeric_limits<std::int64_t>::max());
  // Negative-heavy range stays inside its bounds.
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-7, -3);
    EXPECT_GE(v, -7);
    EXPECT_LE(v, -3);
  }
}

TEST(Rng, UniformIntIsUnbiased) {
  // A modulo draw over a span that does not divide 2^64 over-selects the
  // low residues; the Lemire rejection draw must keep every cell near the
  // expected frequency. Span 3 with 60000 draws: expect ~20000 per cell,
  // tolerate 4 sigma (~4 * sqrt(n*p*(1-p)) ~ 460).
  Rng r(23);
  const int n = 60000;
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < n; ++i) ++counts[r.uniform_int(0, 2)];
  for (int c : counts) EXPECT_NEAR(c, n / 3, 460);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(17);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, Fnv1aIsStable) {
  EXPECT_EQ(fnv1a("node-0"), fnv1a("node-0"));
  EXPECT_NE(fnv1a("node-0"), fnv1a("node-1"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng r(1);
  const auto v = r();
  EXPECT_GE(v, Rng::min());
  EXPECT_LE(v, Rng::max());
}

}  // namespace
}  // namespace ecotune
