#include <gtest/gtest.h>

#include "hwsim/cluster.hpp"
#include "hwsim/node.hpp"
#include "hwsim/x86_adapt.hpp"

namespace ecotune::hwsim {
namespace {

KernelTraits small_kernel() {
  KernelTraits k;
  k.total_instructions = 1e9;
  return k;
}

class RecordingListener final : public PowerListener {
 public:
  void on_segment(Seconds d, Watts node, Watts cpu) override {
    segments.push_back({d, node, cpu});
  }
  struct Segment {
    Seconds duration;
    Watts node_power;
    Watts cpu_power;
  };
  std::vector<Segment> segments;
};

TEST(NodeSimulator, DefaultsToClusterDefaultFrequencies) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  EXPECT_EQ(node.core_freq(0), CoreFreq::mhz(2500));
  EXPECT_EQ(node.uncore_freq(0), UncoreFreq::mhz(3000));
  EXPECT_EQ(node.uncore_freq(1), UncoreFreq::mhz(3000));
}

TEST(NodeSimulator, FrequencyStateIsPerCoreAndPerSocket) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  node.set_core_freq(5, CoreFreq::mhz(1200));
  EXPECT_EQ(node.core_freq(5), CoreFreq::mhz(1200));
  EXPECT_EQ(node.core_freq(4), CoreFreq::mhz(2500));
  node.set_uncore_freq(1, UncoreFreq::mhz(1300));
  EXPECT_EQ(node.uncore_freq(0), UncoreFreq::mhz(3000));
  EXPECT_EQ(node.uncore_freq(1), UncoreFreq::mhz(1300));
}

TEST(NodeSimulator, EffectiveCoreFreqIsGangMinimum) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  node.set_core_freq(3, CoreFreq::mhz(1500));
  EXPECT_EQ(node.effective_core_freq(4), CoreFreq::mhz(1500));
  EXPECT_EQ(node.effective_core_freq(3), CoreFreq::mhz(2500));
}

TEST(NodeSimulator, RejectsOffGridFrequencies) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  EXPECT_THROW(node.set_core_freq(0, CoreFreq::mhz(1234)),
               PreconditionError);
  EXPECT_THROW(node.set_uncore_freq(0, UncoreFreq::mhz(3100)),
               PreconditionError);
  EXPECT_THROW(node.set_core_freq(24, CoreFreq::mhz(1200)),
               PreconditionError);
}

TEST(NodeSimulator, RunKernelAdvancesClockAndEnergy) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  const auto r = node.run_kernel(small_kernel(), 24);
  EXPECT_GT(r.time.value(), 0.0);
  EXPECT_DOUBLE_EQ(node.now().value(), r.time.value());
  EXPECT_DOUBLE_EQ(r.node_energy.value(),
                   r.power.node().value() * r.time.value());
  EXPECT_GT(r.node_energy.value(), r.cpu_energy.value());
}

TEST(NodeSimulator, ZeroJitterIsDeterministic) {
  NodeSimulator a(haswell_ep_spec(), 0, Rng(1));
  NodeSimulator b(haswell_ep_spec(), 0, Rng(1));
  a.set_jitter(0.0);
  b.set_jitter(0.0);
  const auto ra = a.run_kernel(small_kernel(), 24);
  const auto rb = b.run_kernel(small_kernel(), 24);
  EXPECT_DOUBLE_EQ(ra.node_energy.value(), rb.node_energy.value());
  EXPECT_DOUBLE_EQ(ra.time.value(), rb.time.value());
}

TEST(NodeSimulator, JitterPerturbsRepeatedRuns) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.01);
  const auto r1 = node.run_kernel(small_kernel(), 24);
  const auto r2 = node.run_kernel(small_kernel(), 24);
  EXPECT_NE(r1.node_energy.value(), r2.node_energy.value());
  // ...but only slightly.
  EXPECT_NEAR(r1.node_energy / r2.node_energy, 1.0, 0.2);
}

TEST(NodeSimulator, ListenersSeeAllSegments) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  RecordingListener listener;
  node.add_listener(&listener);
  node.run_kernel(small_kernel(), 24);
  node.idle(Seconds(0.5));
  node.remove_listener(&listener);
  node.run_kernel(small_kernel(), 24);  // not observed
  ASSERT_EQ(listener.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(listener.segments[1].duration.value(), 0.5);
  EXPECT_LT(listener.segments[1].node_power.value(),
            listener.segments[0].node_power.value());
}

TEST(NodeSimulator, CloneSnapshotsFullState) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(6));
  node.set_jitter(0.01);
  node.set_all_core_freqs(CoreFreq::mhz(1800));
  node.set_uncore_freq(1, UncoreFreq::mhz(2200));
  node.idle(Seconds(2.0));

  NodeSimulator copy = node.clone();
  EXPECT_EQ(copy.core_freq(5), CoreFreq::mhz(1800));
  EXPECT_EQ(copy.uncore_freq(1), UncoreFreq::mhz(2200));
  EXPECT_DOUBLE_EQ(copy.now().value(), node.now().value());
  EXPECT_DOUBLE_EQ(copy.variability().leakage_factor,
                   node.variability().leakage_factor);
  // Same noise stream state: the next jittered run matches bitwise.
  const auto ra = node.run_kernel(small_kernel(), 24);
  const auto rb = copy.run_kernel(small_kernel(), 24);
  EXPECT_EQ(ra.node_energy.value(), rb.node_energy.value());
  EXPECT_EQ(ra.time.value(), rb.time.value());
}

TEST(NodeSimulator, CloneDropsListenersAndKeyedCloneDecorrelates) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(6));
  node.set_jitter(0.01);
  RecordingListener listener;
  node.add_listener(&listener);

  NodeSimulator plain = node.clone();
  NodeSimulator keyed_a = node.clone("task-0");
  NodeSimulator keyed_b = node.clone("task-1");
  plain.run_kernel(small_kernel(), 24);
  EXPECT_TRUE(listener.segments.empty());  // clones observe nothing

  // Distinct keys yield distinct (but per-key deterministic) jitter.
  const auto a1 = keyed_a.run_kernel(small_kernel(), 24);
  const auto b1 = keyed_b.run_kernel(small_kernel(), 24);
  EXPECT_NE(a1.time.value(), b1.time.value());
  const auto a2 = node.clone("task-0").run_kernel(small_kernel(), 24);
  EXPECT_EQ(a1.time.value(), a2.time.value());
}

TEST(NodeSimulator, IdlePowerBelowLoadPower) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  const auto loaded = node.run_kernel(small_kernel(), 24);
  EXPECT_LT(node.idle_power().node().value(), loaded.power.node().value());
}

TEST(X86Adapt, ChargesLatencyOnlyOnActualChange) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  X86Adapt adapt(node);
  const Seconds t0 = node.now();
  EXPECT_DOUBLE_EQ(adapt.set_all_core_freqs(CoreFreq::mhz(2500)).value(),
                   0.0);  // already there
  EXPECT_GT(adapt.set_all_core_freqs(CoreFreq::mhz(1800)).value(), 0.0);
  EXPECT_DOUBLE_EQ(adapt.set_all_core_freqs(CoreFreq::mhz(1800)).value(),
                   0.0);
  EXPECT_EQ(adapt.switch_count(), 1);
  EXPECT_DOUBLE_EQ(adapt.total_switch_time().value(), 21e-6);
  EXPECT_DOUBLE_EQ((node.now() - t0).value(), 21e-6);
}

TEST(X86Adapt, UncoreLatencyMatchesPaper) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  X86Adapt adapt(node);
  EXPECT_DOUBLE_EQ(adapt.set_uncore_freq(1, UncoreFreq::mhz(1500)).value(),
                   20e-6);
  EXPECT_EQ(node.uncore_freq(1), UncoreFreq::mhz(1500));
  EXPECT_EQ(node.uncore_freq(0), UncoreFreq::mhz(3000));
}

TEST(X86Adapt, ResetAccountingClearsCounters) {
  NodeSimulator node(haswell_ep_spec(), 0, Rng(1));
  X86Adapt adapt(node);
  adapt.set_all_core_freqs(CoreFreq::mhz(1200));
  adapt.reset_accounting();
  EXPECT_EQ(adapt.switch_count(), 0);
  EXPECT_DOUBLE_EQ(adapt.total_switch_time().value(), 0.0);
}

TEST(Cluster, NodesAreStableAndDistinct) {
  Cluster cluster;
  NodeSimulator& n0 = cluster.node(0);
  NodeSimulator& n1 = cluster.node(1);
  EXPECT_EQ(&n0, &cluster.node(0));
  EXPECT_NE(&n0, &n1);
  EXPECT_NE(n0.variability().leakage_factor,
            n1.variability().leakage_factor);
}

TEST(Cluster, SameSeedReproducesVariability) {
  Cluster a(haswell_ep_spec(), 77);
  Cluster b(haswell_ep_spec(), 77);
  EXPECT_DOUBLE_EQ(a.node(5).variability().leakage_factor,
                   b.node(5).variability().leakage_factor);
}

TEST(Cluster, AllocateRotatesThroughPool) {
  Cluster cluster;
  cluster.set_pool_size(3);
  const int a = cluster.allocate().node_id();
  const int b = cluster.allocate().node_id();
  const int c = cluster.allocate().node_id();
  const int d = cluster.allocate().node_id();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(a, d);
}

TEST(Cluster, NodeToNodeEnergyVariabilityIsVisible) {
  Cluster cluster;
  KernelTraits k = small_kernel();
  std::vector<double> energies;
  for (int id = 0; id < 4; ++id) {
    auto& node = cluster.node(id);
    node.set_jitter(0.0);
    energies.push_back(node.run_kernel(k, 24).node_energy.value());
  }
  const auto [lo, hi] = std::minmax_element(energies.begin(), energies.end());
  // The paper's Fig. 2a motivation: different nodes, visibly different
  // energies for the same work.
  EXPECT_GT((*hi - *lo) / *lo, 0.005);
}

}  // namespace
}  // namespace ecotune::hwsim
