// ecotune_lint coverage: golden fixtures under tests/lint_fixtures assert
// exact file:line diagnostics per rule (library level, the same code the
// CLI runs) and the CLI's exit-code contract (process level).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace lint = ecotune::lint;

namespace {

const std::string kFixtures = ECOTUNE_LINT_FIXTURE_DIR;
const std::string kBinary = ECOTUNE_LINT_BIN;

std::vector<std::string> lint_fixture(const std::string& name) {
  const auto diagnostics =
      lint::lint_files(kFixtures, {kFixtures + "/" + name});
  std::vector<std::string> out;
  out.reserve(diagnostics.size());
  for (const auto& d : diagnostics)
    out.push_back(d.path + ":" + std::to_string(d.line) + " [" + d.rule +
                  "]");
  return out;
}

int run_cli(const std::string& args) {
  const int status = std::system((kBinary + " " + args + " > /dev/null 2>&1")
                                     .c_str());
  return WEXITSTATUS(status);
}

}  // namespace

TEST(EcotuneLint, LocaleNumberIoViolations) {
  EXPECT_EQ(lint_fixture("locale_number_io_violation.cpp"),
            (std::vector<std::string>{
                "locale_number_io_violation.cpp:8 [locale-number-io]",
                "locale_number_io_violation.cpp:12 [locale-number-io]",
                "locale_number_io_violation.cpp:17 [locale-number-io]",
                "locale_number_io_violation.cpp:21 [locale-number-io]",
                "locale_number_io_violation.cpp:25 [locale-number-io]"}));
}

TEST(EcotuneLint, LocaleNumberIoClean) {
  EXPECT_TRUE(lint_fixture("locale_number_io_clean.cpp").empty());
}

TEST(EcotuneLint, NondeterministicSeedViolations) {
  EXPECT_EQ(
      lint_fixture("nondeterministic_seed_violation.cpp"),
      (std::vector<std::string>{
          "nondeterministic_seed_violation.cpp:8 [nondeterministic-seed]",
          "nondeterministic_seed_violation.cpp:13 [nondeterministic-seed]",
          "nondeterministic_seed_violation.cpp:17 [nondeterministic-seed]",
          "nondeterministic_seed_violation.cpp:18 "
          "[nondeterministic-seed]"}));
}

TEST(EcotuneLint, NondeterministicSeedClean) {
  EXPECT_TRUE(lint_fixture("nondeterministic_seed_clean.cpp").empty());
}

TEST(EcotuneLint, UnorderedIterationViolations) {
  EXPECT_EQ(
      lint_fixture("unordered_iteration_violation.cpp"),
      (std::vector<std::string>{
          "unordered_iteration_violation.cpp:12 [unordered-iteration]",
          "unordered_iteration_violation.cpp:14 [unordered-iteration]",
          "unordered_iteration_violation.cpp:16 [unordered-iteration]"}));
}

TEST(EcotuneLint, UnorderedIterationClean) {
  EXPECT_TRUE(lint_fixture("unordered_iteration_clean.cpp").empty());
}

TEST(EcotuneLint, RawThreadViolations) {
  EXPECT_EQ(lint_fixture("raw_thread_violation.cpp"),
            (std::vector<std::string>{
                "raw_thread_violation.cpp:6 [raw-thread]",
                "raw_thread_violation.cpp:7 [raw-thread]",
                "raw_thread_violation.cpp:11 [raw-thread]"}));
}

TEST(EcotuneLint, RawThreadClean) {
  EXPECT_TRUE(lint_fixture("raw_thread_clean.cpp").empty());
}

TEST(EcotuneLint, DiagnosticFormatIsFileLineRuleMessage) {
  const auto diagnostics = lint::lint_files(
      kFixtures, {kFixtures + "/raw_thread_violation.cpp"});
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_EQ(lint::format_diagnostic(diagnostics.front()).substr(0, 36),
            "raw_thread_violation.cpp:6: error: [");
}

TEST(EcotuneLint, TunersModuleViolations) {
  // The src/tuners/ module idioms gone wrong: entropy/clock seeding and a
  // hash-ordered Q-table dump must all be flagged.
  EXPECT_EQ(lint_fixture("tuners_module_violation.cpp"),
            (std::vector<std::string>{
                "tuners_module_violation.cpp:14 [nondeterministic-seed]",
                "tuners_module_violation.cpp:16 [nondeterministic-seed]",
                "tuners_module_violation.cpp:20 [unordered-iteration]"}));
}

TEST(EcotuneLint, TunersModuleClean) {
  EXPECT_TRUE(lint_fixture("tuners_module_clean.cpp").empty());
}

TEST(EcotuneLint, TunersPathsGetNoWhitelist) {
  // The whitelists are for the common/ wrappers only; a tuner source is
  // linted like any other module file.
  const std::string entropy = "long s() { return time(nullptr); }\n";
  EXPECT_EQ(lint::lint_source("src/tuners/qlearning_tuner.cpp", entropy)
                .size(),
            1u);
  const std::string hashed =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> q;\n"
      "void f() { for (const auto& kv : q) std::printf(\"%d\\n\", "
      "kv.first); }\n";
  EXPECT_EQ(lint::lint_source("src/tuners/registry.cpp", hashed).size(), 1u);
}

TEST(EcotuneLint, WhitelistPathsSuppressRules) {
  // The identical source is a violation outside common/ and clean inside
  // the wrapper whitelist.
  const std::string text = "int f(const char* s) { return atoi(s); }\n";
  EXPECT_EQ(lint::lint_source("src/model/foo.cpp", text).size(), 1u);
  EXPECT_TRUE(lint::lint_source("src/common/cli.cpp", text).empty());
}

TEST(EcotuneLint, SeedWhitelistIsRngOnly) {
  const std::string text = "long s() { return time(nullptr); }\n";
  EXPECT_EQ(lint::lint_source("src/hwsim/node.cpp", text).size(), 1u);
  EXPECT_TRUE(lint::lint_source("src/common/rng.cpp", text).empty());
}

TEST(EcotuneLint, ThreadWhitelistIsParallelOnly) {
  const std::string text = "void f() { std::thread t([]{}); t.join(); }\n";
  EXPECT_EQ(lint::lint_source("src/api/session.cpp", text).size(), 1u);
  EXPECT_TRUE(lint::lint_source("src/common/parallel.cpp", text).empty());
}

TEST(EcotuneLint, InlineWaiverIsPerLineAndPerRule) {
  const std::string waived =
      "int f(const char* s) { return atoi(s); }"
      "  // ecotune-lint: allow(locale-number-io) -- reason\n";
  EXPECT_TRUE(lint::lint_source("tools/x.cpp", waived).empty());
  // A waiver for a different rule does not suppress the finding.
  const std::string wrong_rule =
      "int f(const char* s) { return atoi(s); }"
      "  // ecotune-lint: allow(raw-thread) -- reason\n";
  EXPECT_EQ(lint::lint_source("tools/x.cpp", wrong_rule).size(), 1u);
}

TEST(EcotuneLint, ExitCodeCleanIsZero) {
  EXPECT_EQ(run_cli("--root " + kFixtures + " " + kFixtures +
                    "/locale_number_io_clean.cpp"),
            0);
}

TEST(EcotuneLint, ExitCodeFindingsIsOne) {
  EXPECT_EQ(run_cli("--root " + kFixtures + " " + kFixtures +
                    "/locale_number_io_violation.cpp"),
            1);
}

TEST(EcotuneLint, ExitCodeUsageOrIoErrorIsTwo) {
  EXPECT_EQ(run_cli(kFixtures + "/does_not_exist.cpp"), 2);
  EXPECT_EQ(run_cli("--bogus-option"), 2);
}

TEST(EcotuneLint, ListRulesNamesEveryRule) {
  EXPECT_EQ(lint::rule_names(),
            (std::vector<std::string>{"locale-number-io",
                                      "nondeterministic-seed",
                                      "unordered-iteration", "raw-thread"}));
}
