// ecotune_lint coverage: golden fixtures under tests/lint_fixtures assert
// exact file:line diagnostics per rule (library level, the same code the
// CLI runs) and the CLI's exit-code contract (process level).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "lint/include_graph.hpp"
#include "lint/linter.hpp"
#include "lint/sarif.hpp"

namespace lint = ecotune::lint;

namespace {

const std::string kFixtures = ECOTUNE_LINT_FIXTURE_DIR;
const std::string kBinary = ECOTUNE_LINT_BIN;

std::vector<std::string> format_pins(
    const std::vector<lint::Diagnostic>& diagnostics) {
  std::vector<std::string> out;
  out.reserve(diagnostics.size());
  for (const auto& d : diagnostics)
    out.push_back(d.path + ":" + std::to_string(d.line) + " [" + d.rule +
                  "]");
  return out;
}

std::vector<std::string> lint_fixture(const std::string& name) {
  return format_pins(lint::lint_files(kFixtures, {kFixtures + "/" + name}));
}

std::string read_fixture(const std::string& name) {
  std::ifstream is(kFixtures + "/" + name, std::ios::binary);
  EXPECT_TRUE(is.good()) << "cannot read fixture " << name;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Lints a fixture's content as if it lived at `reported_path` — the
/// path-keyed rules (module DAG, whitelists) see that path, while the
/// fixture file itself stays outside the repo's own scan set.
std::vector<std::string> lint_fixture_as(const std::string& name,
                                         const std::string& reported_path) {
  return format_pins(lint::lint_source(reported_path, read_fixture(name)));
}

int run_cli(const std::string& args) {
  const int status = std::system((kBinary + " " + args + " > /dev/null 2>&1")
                                     .c_str());
  return WEXITSTATUS(status);
}

std::string run_cli_stdout(const std::string& args,
                           const std::string& capture_name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / capture_name).string();
  const int status = std::system(
      (kBinary + " " + args + " > " + path + " 2>/dev/null").c_str());
  (void)status;  // findings exit 1 by contract; callers compare the bytes
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::filesystem::remove(path);
  return buffer.str();
}

}  // namespace

TEST(EcotuneLint, LocaleNumberIoViolations) {
  EXPECT_EQ(lint_fixture("locale_number_io_violation.cpp"),
            (std::vector<std::string>{
                "locale_number_io_violation.cpp:8 [locale-number-io]",
                "locale_number_io_violation.cpp:12 [locale-number-io]",
                "locale_number_io_violation.cpp:17 [locale-number-io]",
                "locale_number_io_violation.cpp:21 [locale-number-io]",
                "locale_number_io_violation.cpp:25 [locale-number-io]"}));
}

TEST(EcotuneLint, LocaleNumberIoClean) {
  EXPECT_TRUE(lint_fixture("locale_number_io_clean.cpp").empty());
}

TEST(EcotuneLint, NondeterministicSeedViolations) {
  EXPECT_EQ(
      lint_fixture("nondeterministic_seed_violation.cpp"),
      (std::vector<std::string>{
          "nondeterministic_seed_violation.cpp:8 [nondeterministic-seed]",
          "nondeterministic_seed_violation.cpp:13 [nondeterministic-seed]",
          "nondeterministic_seed_violation.cpp:17 [nondeterministic-seed]",
          "nondeterministic_seed_violation.cpp:18 "
          "[nondeterministic-seed]"}));
}

TEST(EcotuneLint, NondeterministicSeedClean) {
  EXPECT_TRUE(lint_fixture("nondeterministic_seed_clean.cpp").empty());
}

TEST(EcotuneLint, UnorderedIterationViolations) {
  EXPECT_EQ(
      lint_fixture("unordered_iteration_violation.cpp"),
      (std::vector<std::string>{
          "unordered_iteration_violation.cpp:12 [unordered-iteration]",
          "unordered_iteration_violation.cpp:14 [unordered-iteration]",
          "unordered_iteration_violation.cpp:16 [unordered-iteration]"}));
}

TEST(EcotuneLint, UnorderedIterationClean) {
  EXPECT_TRUE(lint_fixture("unordered_iteration_clean.cpp").empty());
}

TEST(EcotuneLint, RawThreadViolations) {
  EXPECT_EQ(lint_fixture("raw_thread_violation.cpp"),
            (std::vector<std::string>{
                "raw_thread_violation.cpp:6 [raw-thread]",
                "raw_thread_violation.cpp:7 [raw-thread]",
                "raw_thread_violation.cpp:11 [raw-thread]"}));
}

TEST(EcotuneLint, RawThreadClean) {
  EXPECT_TRUE(lint_fixture("raw_thread_clean.cpp").empty());
}

TEST(EcotuneLint, ServeListenerRawThreadViolations) {
  // The daemon module is under the raw-thread rule like everything else
  // outside common/parallel: a hand-rolled per-connection thread in a
  // src/serve listener is flagged on both the spawn and the detach.
  EXPECT_EQ(lint_fixture_as("serve_listener_violation.cpp",
                            "src/serve/serve_listener_violation.cpp"),
            (std::vector<std::string>{
                "src/serve/serve_listener_violation.cpp:8 [raw-thread]",
                "src/serve/serve_listener_violation.cpp:9 [raw-thread]"}));
}

TEST(EcotuneLint, ServeListenerWaiverIsClean) {
  // The explicit `// ecotune-lint: allow(raw-thread) -- reason` waiver
  // silences the spawn line, and std::this_thread::sleep_for never trips
  // the rule (the real Server needs neither: it routes through the pool).
  EXPECT_TRUE(lint_fixture_as("serve_listener_clean.cpp",
                              "src/serve/serve_listener_clean.cpp")
                  .empty());
}

TEST(EcotuneLint, DiagnosticFormatIsFileLineRuleMessage) {
  const auto diagnostics = lint::lint_files(
      kFixtures, {kFixtures + "/raw_thread_violation.cpp"});
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_EQ(lint::format_diagnostic(diagnostics.front()).substr(0, 36),
            "raw_thread_violation.cpp:6: error: [");
}

TEST(EcotuneLint, TunersModuleViolations) {
  // The src/tuners/ module idioms gone wrong: entropy/clock seeding and a
  // hash-ordered Q-table dump must all be flagged.
  EXPECT_EQ(lint_fixture("tuners_module_violation.cpp"),
            (std::vector<std::string>{
                "tuners_module_violation.cpp:14 [nondeterministic-seed]",
                "tuners_module_violation.cpp:16 [nondeterministic-seed]",
                "tuners_module_violation.cpp:20 [unordered-iteration]"}));
}

TEST(EcotuneLint, TunersModuleClean) {
  EXPECT_TRUE(lint_fixture("tuners_module_clean.cpp").empty());
}

TEST(EcotuneLint, TunersPathsGetNoWhitelist) {
  // The whitelists are for the common/ wrappers only; a tuner source is
  // linted like any other module file.
  const std::string entropy = "long s() { return time(nullptr); }\n";
  EXPECT_EQ(lint::lint_source("src/tuners/qlearning_tuner.cpp", entropy)
                .size(),
            1u);
  const std::string hashed =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> q;\n"
      "void f() { for (const auto& kv : q) std::printf(\"%d\\n\", "
      "kv.first); }\n";
  EXPECT_EQ(lint::lint_source("src/tuners/registry.cpp", hashed).size(), 1u);
}

TEST(EcotuneLint, WhitelistPathsSuppressRules) {
  // The identical source is a violation outside common/ and clean inside
  // the wrapper whitelist.
  const std::string text = "int f(const char* s) { return atoi(s); }\n";
  EXPECT_EQ(lint::lint_source("src/model/foo.cpp", text).size(), 1u);
  EXPECT_TRUE(lint::lint_source("src/common/cli.cpp", text).empty());
}

TEST(EcotuneLint, SeedWhitelistIsRngOnly) {
  const std::string text = "long s() { return time(nullptr); }\n";
  EXPECT_EQ(lint::lint_source("src/hwsim/node.cpp", text).size(), 1u);
  EXPECT_TRUE(lint::lint_source("src/common/rng.cpp", text).empty());
}

TEST(EcotuneLint, ThreadWhitelistIsParallelOnly) {
  const std::string text = "void f() { std::thread t([]{}); t.join(); }\n";
  EXPECT_EQ(lint::lint_source("src/api/session.cpp", text).size(), 1u);
  EXPECT_TRUE(lint::lint_source("src/common/parallel.cpp", text).empty());
}

TEST(EcotuneLint, InlineWaiverIsPerLineAndPerRule) {
  const std::string waived =
      "int f(const char* s) { return atoi(s); }"
      "  // ecotune-lint: allow(locale-number-io) -- reason\n";
  EXPECT_TRUE(lint::lint_source("tools/x.cpp", waived).empty());
  // A waiver for a different rule does not suppress the finding.
  const std::string wrong_rule =
      "int f(const char* s) { return atoi(s); }"
      "  // ecotune-lint: allow(raw-thread) -- reason\n";
  EXPECT_EQ(lint::lint_source("tools/x.cpp", wrong_rule).size(), 1u);
}

TEST(EcotuneLint, ExitCodeCleanIsZero) {
  EXPECT_EQ(run_cli("--root " + kFixtures + " " + kFixtures +
                    "/locale_number_io_clean.cpp"),
            0);
}

TEST(EcotuneLint, ExitCodeFindingsIsOne) {
  EXPECT_EQ(run_cli("--root " + kFixtures + " " + kFixtures +
                    "/locale_number_io_violation.cpp"),
            1);
}

TEST(EcotuneLint, ExitCodeUsageOrIoErrorIsTwo) {
  EXPECT_EQ(run_cli(kFixtures + "/does_not_exist.cpp"), 2);
  EXPECT_EQ(run_cli("--bogus-option"), 2);
}

TEST(EcotuneLint, ListRulesNamesEveryRule) {
  EXPECT_EQ(lint::rule_names(),
            (std::vector<std::string>{
                "locale-number-io", "nondeterministic-seed",
                "unordered-iteration", "raw-thread", "lock-discipline",
                "include-layering", "raw-intrinsics"}));
}

TEST(EcotuneLint, RuleRegistryCarriesMetadata) {
  for (const lint::Rule& rule : lint::rules()) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.summary.empty());
    EXPECT_FALSE(rule.help_uri.empty()) << rule.name;
    EXPECT_NE(rule.check, nullptr) << rule.name;
    EXPECT_EQ(to_string(rule.severity), "error") << rule.name;
  }
}

TEST(EcotuneLint, LockDisciplineViolations) {
  EXPECT_EQ(lint_fixture("lock_discipline_violation.cpp"),
            (std::vector<std::string>{
                "lock_discipline_violation.cpp:6 [lock-discipline]",
                "lock_discipline_violation.cpp:9 [lock-discipline]",
                "lock_discipline_violation.cpp:11 [lock-discipline]",
                "lock_discipline_violation.cpp:14 [lock-discipline]"}));
}

TEST(EcotuneLint, LockDisciplineClean) {
  EXPECT_TRUE(lint_fixture("lock_discipline_clean.cpp").empty());
}

TEST(EcotuneLint, LockDisciplineWhitelistIsCommonOnly) {
  // The wrapper layer itself must forward the raw calls; everything above
  // it must not.
  const std::string text = "void f(M& m) { m.lock(); m.unlock(); }\n";
  EXPECT_EQ(lint::lint_source("src/store/cache.cpp", text).size(), 2u);
  EXPECT_TRUE(lint::lint_source("src/common/mutex.hpp", text).empty());
}

TEST(EcotuneLint, IncludeLayeringViolations) {
  // The fixture is linted as if it lived in src/hwsim/, whose only
  // declared DEPS entry is common.
  EXPECT_EQ(lint_fixture_as("include_layering_violation.cpp",
                            "src/hwsim/include_layering_violation.cpp"),
            (std::vector<std::string>{
                "src/hwsim/include_layering_violation.cpp:7 "
                "[include-layering]",
                "src/hwsim/include_layering_violation.cpp:8 "
                "[include-layering]"}));
}

TEST(EcotuneLint, IncludeLayeringClean) {
  EXPECT_TRUE(lint_fixture_as("include_layering_clean.cpp",
                              "src/model/include_layering_clean.cpp")
                  .empty());
}

TEST(EcotuneLint, IncludeLayeringOnlyGovernsSrcModules) {
  // tools/, bench/, examples/, and tests link the aggregate; the DAG only
  // constrains the module libraries themselves.
  const std::string text = "#include \"tuners/registry.hpp\"\n";
  EXPECT_TRUE(lint::lint_source("tools/calibrate.cpp", text).empty());
  EXPECT_EQ(lint::lint_source("src/hwsim/node.cpp", text).size(), 1u);
}

TEST(EcotuneLint, RawIntrinsicsViolations) {
  EXPECT_EQ(lint_fixture("raw_intrinsics_violation.cpp"),
            (std::vector<std::string>{
                "raw_intrinsics_violation.cpp:3 [raw-intrinsics]",
                "raw_intrinsics_violation.cpp:6 [raw-intrinsics]",
                "raw_intrinsics_violation.cpp:6 [raw-intrinsics]",
                "raw_intrinsics_violation.cpp:7 [raw-intrinsics]",
                "raw_intrinsics_violation.cpp:7 [raw-intrinsics]",
                "raw_intrinsics_violation.cpp:8 [raw-intrinsics]"}));
}

TEST(EcotuneLint, RawIntrinsicsClean) {
  EXPECT_TRUE(lint_fixture("raw_intrinsics_clean.cpp").empty());
}

TEST(EcotuneLint, RawIntrinsicsWhitelistIsSimdHppOnly) {
  // The wrapper layer itself is built from raw intrinsics; anything else
  // under src/ — including the kernel engines that consume the wrappers —
  // is not.
  const std::string text =
      "#include <immintrin.h>\n__m256d z = _mm256_setzero_pd();\n";
  EXPECT_TRUE(lint::lint_source("src/common/simd.hpp", text).empty());
  EXPECT_EQ(lint::lint_source("src/nn/kernels.cpp", text).size(), 3u);
}

TEST(EcotuneLint, ModuleDagShapeMatchesCmake) {
  const auto& dag = lint::module_dag();
  // common is the bottom of the DAG; every dependency edge points at a
  // registered module; no module depends on itself.
  ASSERT_TRUE(dag.contains("common"));
  EXPECT_TRUE(dag.at("common").empty());
  for (const auto& [module, deps] : dag) {
    for (const std::string& dep : deps) {
      EXPECT_TRUE(dag.contains(dep)) << module << " -> " << dep;
      EXPECT_NE(dep, module) << module;
    }
  }
  // Acyclic: repeatedly strip modules whose deps are all stripped; a
  // cycle would leave a nonempty remainder.
  std::set<std::string> resolved;
  for (std::size_t pass = 0; pass < dag.size(); ++pass) {
    for (const auto& [module, deps] : dag) {
      if (resolved.contains(module)) continue;
      bool ready = true;
      for (const std::string& dep : deps)
        if (!resolved.contains(dep)) ready = false;
      if (ready) resolved.insert(module);
    }
  }
  EXPECT_EQ(resolved.size(), dag.size()) << "module DAG has a cycle";
}

TEST(EcotuneLint, ModuleOfMapsPathsToModules) {
  EXPECT_EQ(lint::module_of("src/hwsim/node.cpp"), "hwsim");
  EXPECT_EQ(lint::module_of("src/common/mutex.hpp"), "common");
  EXPECT_EQ(lint::module_of("tools/ecotune_lint.cpp"), "");
  EXPECT_EQ(lint::module_of("src/nonexistent/x.cpp"), "");
  EXPECT_EQ(lint::module_of("src/api"), "");
}

TEST(EcotuneLint, SarifGoldenRoundTripsThroughCommonJson) {
  const auto diagnostics = lint::lint_files(
      kFixtures, {kFixtures + "/lock_discipline_violation.cpp"});
  ASSERT_EQ(diagnostics.size(), 4u);
  const std::string report = lint::sarif_report(diagnostics);

  const ecotune::Json log = ecotune::Json::parse(report);
  EXPECT_EQ(log.at("version").as_string(), "2.1.0");
  const auto& runs = log.at("runs").as_array();
  ASSERT_EQ(runs.size(), 1u);

  // tool.driver.rules carries the full registry with metadata.
  const auto& driver = runs[0].at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "ecotune_lint");
  const auto& rules = driver.at("rules").as_array();
  ASSERT_EQ(rules.size(), lint::rules().size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].at("id").as_string(), lint::rules()[i].name);
    EXPECT_FALSE(
        rules[i].at("shortDescription").at("text").as_string().empty());
    EXPECT_EQ(rules[i].at("helpUri").as_string(),
              lint::rules()[i].help_uri);
  }

  // One result per fixture violation, with a ruleIndex that resolves back
  // to the rules array and an exact physical location.
  const auto& results = runs[0].at("results").as_array();
  ASSERT_EQ(results.size(), diagnostics.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    EXPECT_EQ(result.at("ruleId").as_string(), diagnostics[i].rule);
    const int rule_index = result.at("ruleIndex").as_int();
    ASSERT_GE(rule_index, 0);
    ASSERT_LT(static_cast<std::size_t>(rule_index), rules.size());
    EXPECT_EQ(rules[static_cast<std::size_t>(rule_index)].at("id")
                  .as_string(),
              diagnostics[i].rule);
    EXPECT_EQ(result.at("level").as_string(), "error");
    EXPECT_EQ(result.at("message").at("text").as_string(),
              diagnostics[i].message);
    const auto& location =
        result.at("locations").as_array().at(0).at("physicalLocation");
    EXPECT_EQ(location.at("artifactLocation").at("uri").as_string(),
              diagnostics[i].path);
    EXPECT_EQ(location.at("region").at("startLine").as_int(),
              diagnostics[i].line);
  }
}

TEST(EcotuneLint, SarifCleanRunHasEmptyResults) {
  const ecotune::Json log = ecotune::Json::parse(lint::sarif_report({}));
  const auto& run = log.at("runs").as_array().at(0);
  EXPECT_TRUE(run.at("results").as_array().empty());
  EXPECT_EQ(run.at("tool").at("driver").at("rules").as_array().size(),
            lint::rules().size());
}

TEST(EcotuneLint, ParallelLintIsByteIdenticalAtLibraryLevel) {
  // The fixture dir has no src/tools/bench/examples subdirs, so scan the
  // fixture files explicitly.
  std::vector<std::filesystem::path> all;
  for (const auto& entry :
       std::filesystem::directory_iterator(kFixtures))
    if (entry.path().extension() == ".cpp") all.push_back(entry.path());
  std::sort(all.begin(), all.end());
  const auto serial = format_pins(lint::lint_files(kFixtures, all, 1));
  const auto parallel = format_pins(lint::lint_files(kFixtures, all, 4));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(EcotuneLint, ParallelLintIsByteIdenticalAtCliLevel) {
  const std::string scan = "--root " + kFixtures + " " + kFixtures +
                           "/lock_discipline_violation.cpp " + kFixtures +
                           "/locale_number_io_violation.cpp";
  const std::string one = run_cli_stdout(scan + " --jobs 1",
                                         "ecotune_lint_j1.txt");
  const std::string four = run_cli_stdout(scan + " --jobs 4",
                                          "ecotune_lint_j4.txt");
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

TEST(EcotuneLint, SarifFormatFlagEmitsParseableJson) {
  const std::string report = run_cli_stdout(
      "--format sarif --root " + kFixtures + " " + kFixtures +
          "/lock_discipline_violation.cpp",
      "ecotune_lint_sarif.json");
  const ecotune::Json log = ecotune::Json::parse(report);
  EXPECT_EQ(log.at("version").as_string(), "2.1.0");
  EXPECT_EQ(log.at("runs").as_array().at(0).at("results").as_array().size(),
            4u);
}
