// Lint fixture (never compiled): the annotated lock discipline — an
// ecotune::Mutex with a GUARDED_BY guardee, held through scoped RAII —
// plus near misses the rule must ignore.
#include <mutex>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

struct Cache {
  ecotune::Mutex mutex_;
  int value ECOTUNE_GUARDED_BY(mutex_) = 0;

  void bump() {
    const ecotune::MutexLock lock(mutex_);  // a variable named lock, no call
    ++value;
  }
};

// Template arguments and references are not declarations of a new mutex.
void observe(std::lock_guard<std::mutex>& guard, ecotune::Mutex& other);
