// Lint fixture (never compiled): manual lock management and a decorative
// mutex the Clang thread-safety lane could never prove anything about.
#include <mutex>

struct Cache {
  std::mutex mutex_;  // VIOLATION line 6: no ECOTUNE_GUARDED_BY guardee

  void bump() {
    mutex_.lock();    // VIOLATION line 9
    ++value;
    mutex_.unlock();  // VIOLATION line 11
  }

  bool poll() { return mutex_.try_lock(); }  // VIOLATION line 14

  int value = 0;
};
