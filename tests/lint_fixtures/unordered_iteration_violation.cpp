// Lint fixture (never compiled): unordered-container iteration in a file
// that writes to an output sink — hash order would leak into stdout.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<std::string, int> counts;
std::unordered_set<std::string> names;

void dump() {
  for (const auto& [key, value] : counts)  // VIOLATION line 12
    std::printf("%s %d\n", key.c_str(), value);
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // VIOLATION 14
  }
  for (const auto& name : names)  // VIOLATION line 16
    std::puts(name.c_str());
}
