// Lint fixture (never compiled): SIMD spoken through the wrapper layer,
// plus near misses the intrinsics rule must ignore. A comment naming
// _mm256_add_pd or <immintrin.h> is not a use.
#include <string>

#include "common/simd.hpp"

void scale4(double* p, double a) {
  using V = ecotune::simd::V4;  // the wrappers are the API
  V::mul(V::loadu(p), V::broadcast(a)).storeu(p);
}

int mm256 = 0;          // no leading underscore: not an intrinsic
int _mask = 0;          // _m prefix alone is not a vector type
std::string doc() { return "see immintrin.h for the ISA listing"; }
