// Lint fixture (never compiled): unordered containers used for lookup only
// (plus ordered iteration) in a file that writes to stdout — all fine.
#include <iostream>
#include <map>
#include <string>
#include <unordered_map>

std::unordered_map<std::string, int> index;  // lookup table, never iterated
std::map<std::string, int> ordered;

int lookup(const std::string& key) {
  const auto it = index.find(key);
  return it == index.end() ? -1 : it->second;
}

void dump() {
  for (const auto& [key, value] : ordered)  // std::map: deterministic order
    std::cout << key << ' ' << value << '\n';
}
