// Lint fixture (never compiled): the same listener shape carrying the
// explicit waiver comment -- the escape hatch for a transport that truly
// cannot route through the pool -- plus the sleep call the rule must not
// confuse with std::thread (std::this_thread is not a thread spawn).
#include <chrono>
#include <thread>

void accept_loop(int listen_fd) {
  while (listen_fd >= 0) {
    std::thread connection([] {});  // ecotune-lint: allow(raw-thread) -- fixture: dedicated transport listener outside the pool
    connection.join();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}
