// Lint fixture (never compiled): the determinism sins a tuning strategy
// must not commit — entropy/clock-seeded exploration and a hash-ordered
// Q-table dump. src/tuners/ gets no whitelist, so both rules fire there
// exactly as in the rest of src/.
#include <cstdio>
#include <ctime>
#include <random>
#include <string>
#include <unordered_map>

std::unordered_map<std::string, double> q_table;

unsigned long explore_seed() {
  std::random_device entropy;           // VIOLATION line 14
  return entropy() ^
         static_cast<unsigned long>(time(nullptr));  // VIOLATION line 16
}

void dump_policy() {
  for (const auto& [state, value] : q_table)  // VIOLATION line 20
    std::printf("%s\n", state.c_str());
}
