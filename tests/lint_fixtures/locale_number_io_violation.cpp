// Lint fixture (never compiled): locale-dependent number I/O the
// determinism lint must flag, one pattern per marked line.
#include <cstdio>
#include <cstdlib>
#include <string>

int parse_port(const char* text) {
  return atoi(text);  // VIOLATION line 8
}

double parse_ratio(const std::string& text) {
  return std::stod(text);  // VIOLATION line 12
}

double parse_span(const char* text) {
  char* end = nullptr;
  return strtod(text, &end);  // VIOLATION line 17
}

void print_ratio(double r) {
  std::printf("ratio=%0.3f\n", r);  // VIOLATION line 21
}

void log_ratio(std::FILE* f, double r) {
  std::fprintf(f,
               "ratio=%g\n",  // format spans lines; flagged at call line 25
               r);
}
