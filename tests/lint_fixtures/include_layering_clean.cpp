// Lint fixture (never compiled): linted as if at src/model/..., with
// every include edge inside the module's declared DEPS (common, hwsim,
// instr, nn, pmc, stats, store, trace, workload) and external headers in
// angle brackets, which the rule never touches.
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "model/dataset.hpp"
#include "nn/network.hpp"
#include "stats/summary.hpp"
#include "store/measurement_store.hpp"

void fixture();
