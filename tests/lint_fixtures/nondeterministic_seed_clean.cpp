// Lint fixture (never compiled): near misses the seed rule must ignore.
#include <string>

#include "common/rng.hpp"

struct Stopwatch {
  double time() const { return 0.0; }  // member named time: fine
};

double elapsed(const Stopwatch& w) { return w.time(); }

double runtime(double x) { return x; }  // runtime( is not time(

long big = 1'000'000;  // digit separators must not derail the lexer

const char* kDoc = "seeded, never time(NULL) or rand()";  // strings masked

ecotune::Rng task_stream(const ecotune::Rng& base, int i) {
  return base.fork("task-" + std::to_string(i));
}
