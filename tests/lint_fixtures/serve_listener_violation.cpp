// Lint fixture (never compiled): a hand-rolled daemon listener spawning
// one raw detached thread per accepted connection instead of routing its
// concurrency through common/parallel, as the real src/serve Server does.
#include <thread>

void accept_loop(int listen_fd) {
  while (listen_fd >= 0) {
    std::thread connection([] {});  // VIOLATION line 8
    connection.detach();            // VIOLATION line 9
  }
}
