// Lint fixture (never compiled): the deterministic counterparts — episode
// streams derived from a fixed seed by a pure mix, and an ordered Q-table
// whose dump order cannot depend on hashing.
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

std::map<std::string, double> q_table;

std::uint64_t episode_stream(std::uint64_t seed, std::uint64_t episode) {
  return seed ^ (episode * 0x9E3779B97F4A7C15ULL);
}

void dump_policy() {
  for (const auto& [state, value] : q_table)
    std::printf("%s\n", state.c_str());
}
