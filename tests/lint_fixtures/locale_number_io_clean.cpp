// Lint fixture (never compiled): number I/O the lint must NOT flag —
// wrappers, near-miss identifiers, banned names in strings/comments, and
// an inline waiver.
#include <cstdio>
#include <string>

#include "common/numbers.hpp"

// A comment mentioning atoi( or strtod( must not trip the lint.
const char* kHelp = "parses via strtod( under the hood";  // nor a string

double parse_ratio(const std::string& text) {
  double value = 0.0;
  ecotune::parse_double(text, value);
  return value;
}

int my_atoi_like(const char* text) { return custom_atoi(text); }

void print_count(int n) {
  std::printf("count=%d items=%zu\n", n, sizeof(n));  // no float conversion
}

int waived(const char* text) {
  return atoi(text);  // ecotune-lint: allow(locale-number-io) -- fixture waiver
}
