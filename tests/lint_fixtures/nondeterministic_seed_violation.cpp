// Lint fixture (never compiled): entropy/clock seeding outside the
// common/rng seed plumbing.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned fresh_entropy() {
  std::random_device rd;  // VIOLATION line 8
  return rd();
}

long wall_seed() {
  return time(nullptr);  // VIOLATION line 13
}

int libc_draw() {
  srand(42);      // VIOLATION line 17
  return rand();  // VIOLATION line 18
}
