// Lint fixture (never compiled): raw x86 intrinsics outside the
// sanctioned src/common/simd.hpp wrapper layer.
#include <immintrin.h>  // VIOLATION line 3

double sum4(const double* p) {
  const __m256d v = _mm256_loadu_pd(p);  // VIOLATION line 6 (x2)
  __m128d lo = _mm256_castpd256_pd128(v);  // VIOLATION line 7 (x2)
  return _mm_cvtsd_f64(lo);  // VIOLATION line 8
}
