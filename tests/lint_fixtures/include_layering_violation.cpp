// Lint fixture (never compiled): linted as if at src/hwsim/..., where the
// only legal in-tree dependency is common (src/hwsim/CMakeLists.txt DEPS).
#include <vector>

#include "common/units.hpp"
#include "hwsim/node.hpp"
#include "model/energy_model.hpp"  // VIOLATION line 7: hwsim -> model
#include "tuners/registry.hpp"     // VIOLATION line 8: hwsim -> tuners

void fixture();
