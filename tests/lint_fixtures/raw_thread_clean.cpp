// Lint fixture (never compiled): concurrency routed through the pool, plus
// near misses the thread rule must ignore.
#include <vector>

#include "common/parallel.hpp"

struct Pipeline {
  int thread = 0;  // a member named thread is not std::thread
  void detach;     // a non-call mention of detach is not a detach()
};

std::vector<double> fan_out(std::size_t n) {
  return ecotune::parallel_map_ordered(
      n, [](std::size_t i) { return static_cast<double>(i); });
}
