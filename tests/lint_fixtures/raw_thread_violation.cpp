// Lint fixture (never compiled): raw std::thread use outside
// common/parallel, including the detached-thread footgun.
#include <thread>

void spawn() {
  std::thread worker([] {});  // VIOLATION line 6
  worker.detach();            // VIOLATION line 7
}

unsigned probe() {
  return std::thread::hardware_concurrency();  // VIOLATION line 11
}
