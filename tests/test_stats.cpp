#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stats/crossval.hpp"
#include "stats/descriptive.hpp"
#include "stats/feature_selection.hpp"
#include "stats/linalg.hpp"
#include "stats/metrics.hpp"
#include "stats/regression.hpp"
#include "stats/scaler.hpp"

namespace ecotune::stats {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  m(0, 0) = 9.0;
  EXPECT_DOUBLE_EQ(m.row(0)[0], 9.0);
  EXPECT_DOUBLE_EQ(m.col(1)[1], 5.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), PreconditionError);
}

TEST(Matrix, MultiplyAndTranspose) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  const Matrix at = a.transpose();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
  const auto v = a.apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, IdentityAndArithmetic) {
  const Matrix i = Matrix::identity(3);
  Matrix m(3, 3);
  m(1, 1) = 2.0;
  const Matrix sum = i + m;
  EXPECT_DOUBLE_EQ(sum(1, 1), 3.0);
  const Matrix diff = sum - i;
  EXPECT_DOUBLE_EQ(diff(1, 1), 2.0);
  Matrix s = i;
  s *= 4.0;
  EXPECT_DOUBLE_EQ(s(2, 2), 4.0);
}

TEST(SolveSpd, SolvesWellConditionedSystem) {
  const Matrix a{{4, 1}, {1, 3}};
  const auto x = solve_spd(a, {1.0, 2.0});
  EXPECT_NEAR(4 * x[0] + 1 * x[1], 1.0, 1e-12);
  EXPECT_NEAR(1 * x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(SolveSpd, RidgeFallbackHandlesSingularMatrix) {
  const Matrix a{{1, 1}, {1, 1}};  // rank 1
  const auto x = solve_spd(a, {2.0, 2.0});
  // Ridge regularization yields the minimum-norm-ish solution; residual
  // should still be small.
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(Descriptive, BasicStatistics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(stddev_population(xs), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Descriptive, PearsonCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
  const std::vector<double> c{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Ols, RecoversLinearCoefficients) {
  // y = 3 + 2*x1 - 0.5*x2, exactly.
  Matrix x(50, 2);
  std::vector<double> y(50);
  Rng rng(5);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniform(-5, 5);
    x(i, 1) = rng.uniform(0, 10);
    y[i] = 3.0 + 2.0 * x(i, 0) - 0.5 * x(i, 1);
  }
  const auto fit = ols_fit(x, y);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], -0.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict({1.0, 2.0}), 4.0, 1e-9);
}

TEST(Ols, RSquaredDropsWithNoise) {
  Matrix x(200, 1);
  std::vector<double> y(200);
  Rng rng(6);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    y[i] = x(i, 0) + rng.normal(0.0, 0.5);
  }
  const auto fit = ols_fit(x, y);
  EXPECT_GT(fit.r_squared, 0.1);
  EXPECT_LT(fit.r_squared, 0.9);
  EXPECT_LE(fit.adjusted_r_squared, fit.r_squared);
}

TEST(Ols, ValidatesInput) {
  Matrix x(3, 5);
  EXPECT_THROW(ols_fit(x, {1, 2, 3}), PreconditionError);  // p > n
  EXPECT_THROW(ols_fit(x, {1, 2}), PreconditionError);     // size mismatch
}

TEST(Vif, DetectsCollinearity) {
  Rng rng(7);
  Matrix x(100, 3);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    x(i, 1) = rng.uniform(0, 1);
    x(i, 2) = 2.0 * x(i, 0) + rng.normal(0.0, 0.01);  // nearly collinear
  }
  const auto vifs = vif_all(x);
  EXPECT_GT(vifs[0], 10.0);
  EXPECT_LT(vifs[1], 2.0);
  EXPECT_GT(vifs[2], 10.0);
  EXPECT_GT(mean_vif(x), 5.0);
}

TEST(Vif, IndependentFeaturesHaveLowVif) {
  Rng rng(8);
  Matrix x(200, 4);
  for (std::size_t i = 0; i < 200; ++i)
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.normal(0, 1);
  EXPECT_LT(mean_vif(x), 1.2);
}

TEST(FeatureSelection, PicksInformativeFeaturesAndRespectsVifGuard) {
  Rng rng(9);
  const std::size_t n = 300;
  Matrix x(n, 6);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.normal(0, 1);
    x(i, 4) = x(i, 0) + rng.normal(0.0, 0.01);  // collinear duplicate of 0
    x(i, 5) = rng.normal(0, 1);                 // pure noise
    y[i] = 2.0 * x(i, 0) - 1.0 * x(i, 1) + 0.5 * x(i, 2) +
           rng.normal(0.0, 0.05);
  }
  SelectionOptions opts;
  opts.max_features = 4;
  const auto result = select_features(x, y, opts);
  // The three informative features are selected (0 may be replaced by its
  // collinear twin 4, but never both).
  const auto& sel = result.selected;
  const bool has0 =
      std::find(sel.begin(), sel.end(), 0u) != sel.end();
  const bool has4 =
      std::find(sel.begin(), sel.end(), 4u) != sel.end();
  EXPECT_TRUE(has0 || has4);
  EXPECT_FALSE(has0 && has4);  // VIF guard forbids the collinear pair
  EXPECT_NE(std::find(sel.begin(), sel.end(), 1u), sel.end());
  EXPECT_NE(std::find(sel.begin(), sel.end(), 2u), sel.end());
  EXPECT_GT(result.adjusted_r_squared, 0.95);
  EXPECT_LT(result.mean_vif, 10.0);
}

TEST(FeatureSelection, IgnoresConstantColumns) {
  Rng rng(10);
  Matrix x(100, 3);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = 7.0;  // constant
    x(i, 1) = rng.normal(0, 1);
    x(i, 2) = rng.normal(0, 1);
    y[i] = x(i, 1);
  }
  const auto result = select_features(x, y);
  for (auto j : result.selected) EXPECT_NE(j, 0u);
}

TEST(Scaler, StandardizesToZeroMeanUnitVariance) {
  Rng rng(11);
  Matrix x(500, 2);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.normal(10.0, 3.0);
    x(i, 1) = rng.normal(-5.0, 0.5);
  }
  StandardScaler scaler;
  scaler.fit(x);
  const Matrix t = scaler.transform(x);
  for (std::size_t j = 0; j < 2; ++j) {
    const auto col = t.col(j);
    EXPECT_NEAR(mean(col), 0.0, 1e-10);
    EXPECT_NEAR(stddev_population(col), 1.0, 1e-10);
  }
}

TEST(Scaler, RowTransformRoundTrip) {
  Matrix x{{1, 10}, {3, 20}, {5, 30}};
  StandardScaler scaler;
  scaler.fit(x);
  std::vector<double> row{3.0, 20.0};
  scaler.transform_row(row);
  EXPECT_NEAR(row[0], 0.0, 1e-12);
  scaler.inverse_transform_row(row);
  EXPECT_NEAR(row[0], 3.0, 1e-12);
  EXPECT_NEAR(row[1], 20.0, 1e-12);
}

TEST(Scaler, JsonRoundTrip) {
  Matrix x{{1, 2}, {3, 4}};
  StandardScaler scaler;
  scaler.fit(x);
  const auto restored = StandardScaler::from_json(
      Json::parse(scaler.to_json().dump()));
  EXPECT_EQ(restored.mean(), scaler.mean());
  EXPECT_EQ(restored.scale(), scaler.scale());
}

TEST(Scaler, ConstantFeatureDoesNotDivideByZero) {
  Matrix x{{5, 1}, {5, 2}, {5, 3}};
  StandardScaler scaler;
  scaler.fit(x);
  std::vector<double> row{5.0, 2.0};
  scaler.transform_row(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  EXPECT_TRUE(std::isfinite(row[1]));
}

TEST(CrossVal, KfoldPartitionsAllSamples) {
  Rng rng(12);
  const auto splits = kfold(100, 10, rng);
  ASSERT_EQ(splits.size(), 10u);
  std::vector<int> seen(100, 0);
  for (const auto& s : splits) {
    EXPECT_EQ(s.train.size() + s.test.size(), 100u);
    for (auto i : s.test) ++seen[i];
  }
  for (int c : seen) EXPECT_EQ(c, 1);  // each sample tested exactly once
}

TEST(CrossVal, KfoldValidates) {
  Rng rng(13);
  EXPECT_THROW(kfold(5, 1, rng), PreconditionError);
  EXPECT_THROW(kfold(5, 6, rng), PreconditionError);
}

TEST(CrossVal, LeaveOneGroupOut) {
  const std::vector<std::string> groups{"a", "a", "b", "c", "b", "a"};
  const auto splits = leave_one_group_out(groups);
  ASSERT_EQ(splits.size(), 3u);  // a, b, c
  EXPECT_EQ(splits[0].test, (std::vector<std::size_t>{0, 1, 5}));
  EXPECT_EQ(splits[1].test, (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(splits[2].test, (std::vector<std::size_t>{3}));
  for (const auto& s : splits)
    EXPECT_EQ(s.train.size() + s.test.size(), groups.size());
  EXPECT_EQ(distinct_groups(groups),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Metrics, ErrorMeasures) {
  const std::vector<double> t{1.0, 2.0, 4.0};
  const std::vector<double> p{1.1, 1.8, 4.0};
  EXPECT_NEAR(mape(t, p), 100.0 * (0.1 + 0.1 + 0.0) / 3.0, 1e-9);
  EXPECT_NEAR(mse(t, p), (0.01 + 0.04) / 3.0, 1e-12);
  EXPECT_NEAR(mae(t, p), (0.1 + 0.2) / 3.0, 1e-12);
  EXPECT_NEAR(r2_score(t, t), 1.0, 1e-12);
  EXPECT_LT(r2_score(t, p), 1.0);
  const std::vector<double> zero{0.0};
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW((void)mape(zero, one), PreconditionError);
  EXPECT_THROW((void)mse(one, two), PreconditionError);
}

}  // namespace
}  // namespace ecotune::stats
