// Tests of the common Tuner seam (src/tuners/ + ptf/tuner):
//  - the registry's vocabulary, sorted listings, and unknown-name error,
//  - bit-for-bit equivalence: StaticTuner/ExhaustiveTuner/DTA behind the
//    Tuner interface reproduce their pre-refactor rich results on fixed
//    seeds (same nodes, same options, exact double compares),
//  - QLearningTuner determinism, jobs-independence by construction, and
//    warm-restart from the measurement store with zero misses,
//  - the governor baselines' determinism and single-run acquisition cost,
//  - Session::tune plumbing (objective threading, unknown-name rejection).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "api/session.hpp"
#include "baseline/exhaustive_tuner.hpp"
#include "baseline/static_tuner.hpp"
#include "common/error.hpp"
#include "store/measurement_store.hpp"
#include "tuners/registry.hpp"
#include "workload/suite.hpp"

namespace ecotune {
namespace {

namespace fs = std::filesystem;

/// Fresh temp directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("ecotune_tuners_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

hwsim::NodeSimulator test_node(std::uint64_t seed = 42) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(seed));
  node.set_jitter(0.0);
  return node;
}

baseline::StaticTunerOptions coarse_static() {
  baseline::StaticTunerOptions opts;
  opts.thread_counts = {16, 24};
  opts.cf_stride = 3;
  opts.ucf_stride = 3;
  opts.phase_iterations = 1;
  return opts;
}

baseline::ExhaustiveTunerOptions coarse_exhaustive() {
  baseline::ExhaustiveTunerOptions opts;
  opts.thread_counts = {16, 24};
  opts.cf_stride = 3;
  opts.ucf_stride = 3;
  return opts;
}

tuners::QLearningOptions short_qlearn() {
  tuners::QLearningOptions opts;
  opts.episodes = 12;
  opts.phase_iterations = 1;
  return opts;
}

// Reduced-cost acquisition so the DTA equivalence test trains in seconds.
model::AcquisitionOptions tiny_acquisition() {
  model::AcquisitionOptions opts;
  opts.thread_counts = {24};
  opts.cf_stride = 4;
  opts.ucf_stride = 4;
  opts.phase_iterations = 1;
  return opts;
}

const model::EnergyModel& tiny_model() {
  static const model::EnergyModel trained = [] {
    api::Session session(
        api::SessionConfig{}.seed(77).epochs(1).jobs(0).acquisition(
            tiny_acquisition()));
    return session.train_model();
  }();
  return trained;
}

// -- Registry ---------------------------------------------------------------

TEST(TunerRegistry, RegistersAllSixStrategiesSorted) {
  const auto& registry = tuners::default_registry();
  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"conservative", "dta", "exhaustive",
                                      "ondemand", "qlearn", "static"}));
  EXPECT_EQ(registry.names_joined(),
            "conservative, dta, exhaustive, ondemand, qlearn, static");
  for (const auto& name : registry.names())
    EXPECT_TRUE(registry.contains(name)) << name;
  EXPECT_FALSE(registry.contains("annealing"));
}

TEST(TunerRegistry, MadeTunersReportTheirRegistryName) {
  auto node = test_node();
  tuners::TunerContext ctx;
  ctx.node = &node;
  ctx.model = []() -> const model::EnergyModel& { return tiny_model(); };
  for (const auto& name : tuners::default_registry().names()) {
    const auto tuner = tuners::default_registry().make(name, ctx);
    EXPECT_EQ(tuner->name(), name);
  }
}

TEST(TunerRegistry, UnknownNameThrowsWithRegisteredList) {
  auto node = test_node();
  tuners::TunerContext ctx;
  ctx.node = &node;
  try {
    (void)tuners::default_registry().make("annealing", ctx);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("annealing"), std::string::npos);
    EXPECT_NE(what.find("qlearn"), std::string::npos);
    EXPECT_NE(what.find("static"), std::string::npos);
  }
}

// -- Pre-refactor equivalence (bit-for-bit on fixed seeds) ------------------

TEST(TunerEquivalence, StaticBehindInterfaceMatchesDirectCall) {
  const auto app = workload::BenchmarkSuite::by_name("Lulesh");

  auto direct_node = test_node(1);
  baseline::StaticTuner direct(direct_node, coarse_static());
  const auto rich = direct.tune(app, ptf::EnergyObjective{});

  auto seam_node = test_node(1);
  baseline::StaticTuner seam(seam_node, coarse_static());
  Tuner& tuner = seam;
  const TuningOutcome outcome = tuner.tune(TuningRequest{app, "energy"});

  EXPECT_EQ(outcome.tuner, "static");
  EXPECT_EQ(outcome.best.threads, rich.best.threads);
  EXPECT_EQ(outcome.best.core.as_mhz(), rich.best.core.as_mhz());
  EXPECT_EQ(outcome.best.uncore.as_mhz(), rich.best.uncore.as_mhz());
  EXPECT_EQ(outcome.scenarios_evaluated, rich.runs);
  EXPECT_EQ(outcome.app_runs, rich.runs);
  // Exact double equality: the interface path must replay the identical
  // simulation, not a merely similar one.
  EXPECT_EQ(outcome.tuning_time.value(), rich.search_time.value());
  EXPECT_EQ(outcome.best_measurement.node_energy.value(),
            rich.best_point.node_energy.value());
  EXPECT_EQ(outcome.best_measurement.time.value(),
            rich.best_point.time.value());
}

TEST(TunerEquivalence, ExhaustiveBehindInterfaceMatchesDirectCall) {
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(1);

  auto direct_node = test_node(1);
  baseline::ExhaustiveTuner direct(direct_node, coarse_exhaustive());
  const auto rich = direct.tune(app);

  auto seam_node = test_node(1);
  baseline::ExhaustiveTuner seam(seam_node, coarse_exhaustive());
  Tuner& tuner = seam;
  const TuningOutcome outcome = tuner.tune(TuningRequest{app, "energy"});

  EXPECT_EQ(outcome.tuner, "exhaustive");
  EXPECT_EQ(outcome.best.threads, rich.app_best.threads);
  EXPECT_EQ(outcome.best.core.as_mhz(), rich.app_best.core.as_mhz());
  EXPECT_EQ(outcome.best.uncore.as_mhz(), rich.app_best.uncore.as_mhz());
  EXPECT_EQ(outcome.scenarios_evaluated, rich.runs);
  EXPECT_EQ(outcome.tuning_time.value(), rich.search_time.value());
  ASSERT_EQ(outcome.region_best.size(), rich.region_best.size());
  for (const auto& [region, config] : rich.region_best) {
    const auto it = outcome.region_best.find(region);
    ASSERT_NE(it, outcome.region_best.end()) << region;
    EXPECT_EQ(it->second.threads, config.threads);
    EXPECT_EQ(it->second.core.as_mhz(), config.core.as_mhz());
    EXPECT_EQ(it->second.uncore.as_mhz(), config.uncore.as_mhz());
  }
}

TEST(TunerEquivalence, DtaAdapterMatchesDirectPluginRun) {
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(3);
  const auto& trained = tiny_model();

  auto direct_node = test_node(7);
  core::DvfsUfsPlugin plugin(trained, core::DvfsUfsPlugin::Options{});
  const core::DtaResult direct = plugin.run_dta(app, direct_node);

  auto seam_node = test_node(7);
  tuners::DtaTuner adapter(
      seam_node, []() -> const model::EnergyModel& { return tiny_model(); });
  const core::DtaResult via_seam = adapter.run(app);

  // The whole analysis result must round-trip identically (DtaResult's
  // JSON dump is bit-exact for doubles).
  EXPECT_EQ(via_seam.to_json().dump(-1), direct.to_json().dump(-1));
}

// -- Q-learning -------------------------------------------------------------

TEST(QLearningTuner, IsDeterministicAcrossFreshInstances) {
  const auto app = workload::BenchmarkSuite::by_name("Mcb");

  auto node_a = test_node(5);
  tuners::QLearningTuner a(node_a, short_qlearn());
  const TuningOutcome out_a = a.tune(TuningRequest{app, "energy"});

  auto node_b = test_node(5);
  tuners::QLearningTuner b(node_b, short_qlearn());
  const TuningOutcome out_b = b.tune(TuningRequest{app, "energy"});

  EXPECT_EQ(out_a.to_json().dump(-1), out_b.to_json().dump(-1));
  EXPECT_EQ(out_a.tuner, "qlearn");
  EXPECT_EQ(out_a.scenarios_evaluated, short_qlearn().episodes);
  EXPECT_EQ(out_a.app_runs, short_qlearn().episodes);
  EXPECT_GT(out_a.tuning_time.value(), 0.0);
  EXPECT_GT(out_a.best_measurement.count, 0);
}

TEST(QLearningTuner, RepeatedCallsDecorrelateButStayInGrid) {
  const auto app = workload::BenchmarkSuite::by_name("Mcb");
  auto node = test_node(5);
  const auto& spec = node.spec();
  tuners::QLearningTuner tuner(node, short_qlearn());
  const auto first = tuner.tune(TuningRequest{app, "energy"});
  const auto second = tuner.tune(TuningRequest{app, "energy"});
  for (const auto* out : {&first, &second}) {
    EXPECT_GE(out->best.core.as_mhz(), spec.core_grid.min().as_mhz());
    EXPECT_LE(out->best.core.as_mhz(), spec.core_grid.max().as_mhz());
    EXPECT_GE(out->best.uncore.as_mhz(), spec.uncore_grid.min().as_mhz());
    EXPECT_LE(out->best.uncore.as_mhz(), spec.uncore_grid.max().as_mhz());
  }
}

TEST(QLearningTuner, WarmRestartReplaysWithZeroMisses) {
  const auto app = workload::BenchmarkSuite::by_name("Mcb");
  TempDir dir("qlearn_warm");

  std::string cold_dump;
  {
    store::MeasurementStore store;
    store.open(dir.path(), store::StoreMode::kReadWrite, "qlearn_test");
    auto node = test_node(5);
    tuners::QLearningOptions opts = short_qlearn();
    opts.store = &store;
    tuners::QLearningTuner tuner(node, opts);
    cold_dump = tuner.tune(TuningRequest{app, "energy"}).to_json().dump(-1);
    EXPECT_EQ(store.stats().hits, 0);
    EXPECT_EQ(store.stats().misses, opts.episodes);
  }

  store::MeasurementStore store;
  store.open(dir.path(), store::StoreMode::kReadWrite, "qlearn_test");
  auto node = test_node(5);
  tuners::QLearningOptions opts = short_qlearn();
  opts.store = &store;
  tuners::QLearningTuner tuner(node, opts);
  const std::string warm_dump =
      tuner.tune(TuningRequest{app, "energy"}).to_json().dump(-1);

  EXPECT_EQ(warm_dump, cold_dump);
  EXPECT_EQ(store.stats().hits, opts.episodes);
  EXPECT_EQ(store.stats().misses, 0);
}

TEST(QLearningTuner, HyperparametersAreCacheRelevant) {
  // A changed episode schedule must not replay the old trajectory: the
  // fingerprint pins every hyperparameter, so a different count re-runs.
  const auto app = workload::BenchmarkSuite::by_name("Mcb");
  TempDir dir("qlearn_fp");

  {
    store::MeasurementStore store;
    store.open(dir.path(), store::StoreMode::kReadWrite, "qlearn_test");
    auto node = test_node(5);
    tuners::QLearningOptions opts = short_qlearn();
    opts.store = &store;
    tuners::QLearningTuner tuner(node, opts);
    (void)tuner.tune(TuningRequest{app, "energy"});
  }

  store::MeasurementStore store;
  store.open(dir.path(), store::StoreMode::kReadWrite, "qlearn_test");
  auto node = test_node(5);
  tuners::QLearningOptions opts = short_qlearn();
  opts.epsilon_decay = 0.5;  // different exploration schedule
  opts.store = &store;
  tuners::QLearningTuner tuner(node, opts);
  (void)tuner.tune(TuningRequest{app, "energy"});
  EXPECT_EQ(store.stats().hits, 0);
  EXPECT_EQ(store.stats().misses, opts.episodes);
}

// -- Governor baselines -----------------------------------------------------

TEST(GovernorTuner, OndemandIsDeterministicAndSingleRun) {
  const auto app = workload::BenchmarkSuite::by_name("Lulesh");

  auto node_a = test_node(9);
  tuners::GovernorTuner a(node_a, tuners::GovernorPolicy::kOndemand);
  const TuningOutcome out_a = a.tune(TuningRequest{app, "energy"});

  auto node_b = test_node(9);
  tuners::GovernorTuner b(node_b, tuners::GovernorPolicy::kOndemand);
  const TuningOutcome out_b = b.tune(TuningRequest{app, "energy"});

  EXPECT_EQ(out_a.to_json().dump(-1), out_b.to_json().dump(-1));
  EXPECT_EQ(out_a.tuner, "ondemand");
  EXPECT_EQ(out_a.app_runs, 1);  // governors tune inside one run
  EXPECT_GE(out_a.scenarios_evaluated, 1);
  EXPECT_TRUE(out_a.region_best.empty());
  // cpufreq governors manage the core clock only.
  const auto& spec = node_a.spec();
  EXPECT_EQ(out_a.best.threads, spec.total_cores());
  EXPECT_EQ(out_a.best.uncore.as_mhz(), spec.default_uncore.as_mhz());
}

TEST(GovernorTuner, ConservativeStepsAreBoundedByFreqStep) {
  const auto app = workload::BenchmarkSuite::by_name("Mcb");
  auto node = test_node(9);
  tuners::GovernorTuner tuner(node, tuners::GovernorPolicy::kConservative);
  const TuningOutcome out = tuner.tune(TuningRequest{app, "energy"});
  EXPECT_EQ(out.tuner, "conservative");
  EXPECT_EQ(out.app_runs, 1);
  const auto& spec = node.spec();
  EXPECT_GE(out.best.core.as_mhz(), spec.core_grid.min().as_mhz());
  EXPECT_LE(out.best.core.as_mhz(), spec.core_grid.max().as_mhz());
}

TEST(GovernorTuner, WarmRestartReplaysWholeRunWithZeroMisses) {
  const auto app = workload::BenchmarkSuite::by_name("Lulesh");
  TempDir dir("governor_warm");

  std::string cold_dump;
  {
    store::MeasurementStore store;
    store.open(dir.path(), store::StoreMode::kReadWrite, "governor_test");
    auto node = test_node(9);
    tuners::GovernorOptions opts;
    opts.store = &store;
    tuners::GovernorTuner tuner(node, tuners::GovernorPolicy::kOndemand,
                                opts);
    cold_dump = tuner.tune(TuningRequest{app, "energy"}).to_json().dump(-1);
  }

  store::MeasurementStore store;
  store.open(dir.path(), store::StoreMode::kReadWrite, "governor_test");
  auto node = test_node(9);
  tuners::GovernorOptions opts;
  opts.store = &store;
  tuners::GovernorTuner tuner(node, tuners::GovernorPolicy::kOndemand, opts);
  const std::string warm_dump =
      tuner.tune(TuningRequest{app, "energy"}).to_json().dump(-1);

  EXPECT_EQ(warm_dump, cold_dump);
  EXPECT_GE(store.stats().hits, 1);
  EXPECT_EQ(store.stats().misses, 0);
}

// -- Session plumbing -------------------------------------------------------

TEST(SessionTune, ThreadsObjectiveAndCachesTunerInstances) {
  api::Session session(api::SessionConfig{}.seed(11).qlearn(short_qlearn()));
  const auto app = workload::BenchmarkSuite::by_name("Mcb");

  const TuningOutcome capped = session.tune("qlearn", app, "power_cap:250");
  EXPECT_EQ(capped.tuner, "qlearn");
  EXPECT_EQ(capped.objective, "power_cap:250");

  // The same Session must reuse the tuner instance, so a second call is
  // decorrelated (fresh noise keys), not an identical replay.
  const TuningOutcome again = session.tune("qlearn", app, "power_cap:250");
  EXPECT_EQ(again.objective, "power_cap:250");
}

TEST(SessionTune, SessionsWithEqualConfigAgreeBitForBit) {
  const auto app = workload::BenchmarkSuite::by_name("Mcb");
  api::Session a(api::SessionConfig{}.seed(11).qlearn(short_qlearn()));
  api::Session b(api::SessionConfig{}.seed(11).qlearn(short_qlearn()));
  EXPECT_EQ(a.tune("qlearn", app).to_json().dump(-1),
            b.tune("qlearn", app).to_json().dump(-1));
}

TEST(SessionTune, UnknownStrategyNameThrowsConfigError) {
  api::Session session(api::SessionConfig{}.seed(11));
  const auto app = workload::BenchmarkSuite::by_name("Mcb");
  EXPECT_THROW((void)session.tune("annealing", app), ConfigError);
}

}  // namespace
}  // namespace ecotune
