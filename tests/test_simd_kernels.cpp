// Contract tests for the SIMD kernel layer (common/simd.hpp +
// nn/kernels.*): level parsing and dispatch, the exact cross-level
// guarantees (dot/axpy bit-identical everywhere), the fused AVX2 engine's
// looser guarantee (last-ulp agreement with the scalar reference path,
// exact run-to-run determinism), and the documented 9-5-5-1 blocked
// parameter layout.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "nn/kernels.hpp"
#include "nn/mlp.hpp"
#include "stats/linalg.hpp"

namespace ecotune::nn {
namespace {

std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> out{simd::Level::kScalar};
  if (simd::supported(simd::Level::kSse2)) out.push_back(simd::Level::kSse2);
  if (simd::supported(simd::Level::kAvx2)) out.push_back(simd::Level::kAvx2);
  return out;
}

/// |a - b| within `ulps` units in the last place of the larger magnitude
/// (absolute epsilon floor for values near zero). The fused engine is
/// allowed this much drift from the scalar reference; anything larger
/// means an accumulation order changed.
::testing::AssertionResult near_ulps(double a, double b, double ulps) {
  const double eps = std::numeric_limits<double>::epsilon();
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  if (std::fabs(a - b) <= ulps * eps * scale)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ by " << std::fabs(a - b) << " (> "
         << ulps << " ulps at scale " << scale << ")";
}

TEST(SimdLevel, ParseAcceptsDocumentedSpellings) {
  EXPECT_EQ(simd::parse_level("off"), simd::Level::kScalar);
  EXPECT_EQ(simd::parse_level("scalar"), simd::Level::kScalar);
  EXPECT_EQ(simd::parse_level("sse2"), simd::Level::kSse2);
  EXPECT_EQ(simd::parse_level("avx2"), simd::Level::kAvx2);
  EXPECT_EQ(simd::parse_level(""), simd::detect_best());
  EXPECT_EQ(simd::parse_level("auto"), simd::detect_best());
  EXPECT_EQ(simd::parse_level("on"), simd::detect_best());
}

TEST(SimdLevel, ParseRejectsTypos) {
  // A typo must not silently fall back to some other code path.
  EXPECT_THROW((void)simd::parse_level("avx512"), ConfigError);
  EXPECT_THROW((void)simd::parse_level("OFF"), ConfigError);
  EXPECT_THROW((void)simd::parse_level("none"), ConfigError);
}

TEST(SimdLevel, DetectBestIsSupportedAndOrdered) {
  EXPECT_TRUE(simd::supported(simd::detect_best()));
  EXPECT_TRUE(simd::supported(simd::Level::kScalar));
}

TEST(SimdLevel, ScopedLevelDrivesDispatch) {
  for (const simd::Level level : supported_levels()) {
    const simd::ScopedLevel scope(level);
    EXPECT_EQ(simd::active_level(), level);
    EXPECT_EQ(kernels::active().level, level);
  }
}

TEST(SimdLevel, EngineSlotsMatchTheContract) {
  // Fused train/forward engines exist only at the AVX2 level (they need
  // FMA); every level carries the generic dot/axpy primitives.
  for (const simd::Level level : supported_levels()) {
    const kernels::KernelSet& ks = kernels::set_for(level);
    EXPECT_EQ(ks.level, level);
    EXPECT_NE(ks.dot, nullptr);
    EXPECT_NE(ks.axpy, nullptr);
    const bool fused = level == simd::Level::kAvx2;
    EXPECT_EQ(ks.train_epoch != nullptr, fused) << simd::to_string(level);
    EXPECT_EQ(ks.forward_batch != nullptr, fused) << simd::to_string(level);
  }
}

TEST(SimdKernels, DotBitIdenticalAcrossAllLevels) {
  // The pairwise-accumulation contract: lane k sums indices ≡ k (mod 4)
  // ascending, combined (s0+s1)+(s2+s3) — EXPECT_EQ, not near.
  Rng rng(0x5EED);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{15}, std::size_t{16}, std::size_t{17}, std::size_t{64},
        std::size_t{67}, std::size_t{256}}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.normal(0.0, 3.0);
      b[i] = rng.normal(0.0, 3.0);
    }
    const double ref =
        kernels::set_for(simd::Level::kScalar).dot(a.data(), b.data(), n);
    for (const simd::Level level : supported_levels()) {
      EXPECT_EQ(kernels::set_for(level).dot(a.data(), b.data(), n), ref)
          << "n=" << n << " level=" << simd::to_string(level);
    }
  }
}

TEST(SimdKernels, AxpyBitIdenticalAcrossAllLevels) {
  Rng rng(0xA1FA);
  for (const std::size_t n : {std::size_t{1}, std::size_t{6}, std::size_t{8},
                              std::size_t{33}, std::size_t{128}}) {
    std::vector<double> x(n), y0(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.normal(0.0, 2.0);
      y0[i] = rng.normal(0.0, 2.0);
    }
    std::vector<double> ref = y0;
    kernels::set_for(simd::Level::kScalar)
        .axpy(ref.data(), 1.7, x.data(), n);
    for (const simd::Level level : supported_levels()) {
      std::vector<double> y = y0;
      kernels::set_for(level).axpy(y.data(), 1.7, x.data(), n);
      EXPECT_EQ(y, ref) << "n=" << n << " level=" << simd::to_string(level);
    }
  }
}

TEST(SimdKernels, TrainPlanPinsTheDocumented9551Layout) {
  // The offsets documented in nn/kernels.hpp (and mirrored as constexpr
  // by the engine's static geometry): head regions first, then the
  // lane-blocked weight blocks.
  const kernels::TrainPlan plan = kernels::build_train_plan(
      {9, 5, 5, 1}, {1, 1, 1}, 1e-3, 0.9, 0.999, 1e-8);
  EXPECT_EQ(plan.head_size, 48u);
  EXPECT_EQ(plan.total, 104u);
  ASSERT_EQ(plan.layers.size(), 3u);
  EXPECT_EQ(plan.layers[0].bias_off, 0u);
  EXPECT_EQ(plan.layers[0].tail_off, 8u);
  EXPECT_EQ(plan.layers[0].block_off, 48u);
  EXPECT_EQ(plan.layers[1].bias_off, 20u);
  EXPECT_EQ(plan.layers[1].tail_off, 28u);
  EXPECT_EQ(plan.layers[1].block_off, 84u);
  EXPECT_EQ(plan.layers[2].bias_off, 36u);
  EXPECT_EQ(plan.layers[2].tail_off, 40u);
  EXPECT_EQ(plan.layers[2].nb, 0u);
  EXPECT_EQ(plan.layers[2].tail, 1u);
}

TEST(SimdKernels, ForwardBatchEngineMatchesReferenceWithinUlps) {
  if (!simd::supported(simd::Level::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  const std::vector<std::vector<std::size_t>> shapes{
      {9, 5, 5, 1}, {4, 8, 1}, {2, 3, 3, 3, 1}};
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    for (const bool relu_out : {true, false}) {
      MlpConfig cfg;
      cfg.layer_sizes = shapes[s];
      cfg.relu_output = relu_out;
      Rng rng(300 + 10 * s + (relu_out ? 1 : 0));
      const Mlp net(cfg, rng);
      Rng data(400 + s);
      stats::Matrix x(61, shapes[s].front());  // odd count: partial group
      for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
          x(r, c) = data.normal(0.0, 2.0);
      Workspace ws;
      std::vector<double> ref(x.rows()), fused(x.rows()),
          again(x.rows());
      {
        const simd::ScopedLevel scalar(simd::Level::kScalar);
        net.forward_batch(x, std::span<double>(ref), ws);
      }
      {
        const simd::ScopedLevel avx2(simd::Level::kAvx2);
        net.forward_batch(x, std::span<double>(fused), ws);
        net.forward_batch(x, std::span<double>(again), ws);
      }
      for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_TRUE(near_ulps(fused[r], ref[r], 16.0))
            << "shape " << s << " relu_out " << relu_out << " row " << r;
        // Exact determinism: identical bits on every run.
        EXPECT_EQ(fused[r], again[r]) << "row " << r;
      }
    }
  }
}

TEST(SimdKernels, TrainEpochEngineDeterministicAndCloseToReference) {
  if (!simd::supported(simd::Level::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  const std::size_t n = 512;
  Rng data_rng(0xF00D);
  stats::Matrix x(n, 9);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 9; ++j) x(i, j) = data_rng.normal(0.0, 1.0);
    y[i] = data_rng.uniform(0.5, 1.5);
  }
  auto losses_at = [&](simd::Level level) {
    const simd::ScopedLevel scope(level);
    Rng rng(0xBEEF);
    Mlp net(MlpConfig{}, rng);
    Rng shuffle(0xCAFE);
    std::vector<double> losses;
    for (int e = 0; e < 4; ++e) losses.push_back(net.train_epoch(x, y, shuffle));
    return losses;
  };
  const auto ref = losses_at(simd::Level::kScalar);
  const auto fused = losses_at(simd::Level::kAvx2);
  const auto fused_again = losses_at(simd::Level::kAvx2);
  // Exact run-to-run reproducibility of the fused trajectory...
  EXPECT_EQ(fused, fused_again);
  // ...that stays within FMA-contraction distance of the reference. The
  // bound is loose-ish (drift compounds over 2048 ADAM steps) but far
  // below anything a logic bug would produce.
  for (std::size_t e = 0; e < ref.size(); ++e) {
    EXPECT_TRUE(near_ulps(fused[e], ref[e], 4096.0)) << "epoch " << e;
  }
}

}  // namespace
}  // namespace ecotune::nn
