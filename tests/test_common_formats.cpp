#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace ecotune {
namespace {

TEST(TextTable, AlignsColumnsAndPrintsHeader) {
  TextTable t("Title");
  t.header({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer-name", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| longer-name |"), std::string::npos);
  // All rendered table lines have the same width.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);  // title
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, HandlesShortRowsAndSeparators) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"only-one"});
  t.separator();
  t.row({"1", "2", "3"});
  const std::string out = t.str();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(-1.0, 0), "-1");
  EXPECT_EQ(TextTable::pct(5.2, 1), "+5.2%");
  EXPECT_EQ(TextTable::pct(-7.83, 2), "-7.83%");
}

TEST(CsvWriter, QuotesOnlyWhenNeeded) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(os.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvWriter, NumericRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row_numeric({1.5, 2.0, -3.25});
  EXPECT_EQ(os.str(), "1.5,2,-3.25\n");
}

TEST(Logging, RespectsLevelAndSink) {
  std::ostringstream sink;
  log::set_sink(&sink);
  log::set_level(log::Level::kWarn);
  log::info("test") << "hidden";
  log::warn("test") << "visible " << 42;
  log::set_sink(nullptr);
  log::set_level(log::Level::kWarn);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible 42"), std::string::npos);
  EXPECT_NE(sink.str().find("[WARN]"), std::string::npos);
}

TEST(SystemConfig, EqualityAndFormatting) {
  SystemConfig a{24, CoreFreq::mhz(2500), UncoreFreq::mhz(3000)};
  SystemConfig b = a;
  EXPECT_EQ(a, b);
  b.threads = 12;
  EXPECT_NE(a, b);
  EXPECT_EQ(to_string(a), "24 thr, 2.5GHz|3.0GHz");
}

}  // namespace
}  // namespace ecotune
