#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace ecotune {
namespace {

TEST(Parallel, ResolveJobs) {
  EXPECT_GE(hardware_jobs(), 1);
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());
  EXPECT_EQ(resolve_jobs(-3), hardware_jobs());
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    ThreadPool pool(jobs);
    EXPECT_EQ(pool.jobs(), jobs);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, IsReusableAcrossRuns) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round)
    pool.run(100, [&](std::size_t i) { total += static_cast<long>(i); });
  EXPECT_EQ(total.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, RethrowsTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run(64,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> ran{0};
  pool.run(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelMapOrdered, ResultsInIndexOrder) {
  const auto out = parallel_map_ordered(
      100, [](std::size_t i) { return static_cast<int>(i) * 3; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ParallelMapOrdered, IdenticalForAnyJobCount) {
  // Per-task RNG substreams keyed by index: the contract the sweep engines
  // rely on for bitwise-deterministic parallel measurement.
  auto draw = [](std::size_t i) {
    Rng rng = Rng(42).fork("task-" + std::to_string(i));
    return rng.uniform(0.0, 1.0);
  };
  const auto serial = parallel_map_ordered(64, draw, 1);
  const auto wide = parallel_map_ordered(64, draw, 8);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], wide[i]) << i;  // bitwise
}

TEST(ParallelReduceOrdered, FoldsInIndexOrder) {
  // Build a string so any reordering of the fold is visible.
  const auto concat = parallel_reduce_ordered(
      10, std::string{},
      [](std::size_t i) { return std::to_string(i); },
      [](std::string& acc, std::string v) { acc += v; }, 4);
  EXPECT_EQ(concat, "0123456789");
}

TEST(ParallelForEach, BalancesUnevenTasks) {
  // Tasks of wildly different cost must all complete (shared-cursor
  // scheduling); the sum checks nothing was dropped.
  std::atomic<long> sum{0};
  parallel_for_each(
      50,
      [&](std::size_t i) {
        volatile long spin = (i % 7 == 0) ? 20000 : 10;
        for (long s = 0; s < spin; ++s) {
        }
        sum += static_cast<long>(i);
      },
      4);
  EXPECT_EQ(sum.load(), 49 * 50 / 2);
}

}  // namespace
}  // namespace ecotune
