// ECOTUNE_CHECK / ECOTUNE_DCHECK contract macros: failure aborts loudly
// with file:line, the stringized condition, and the message; passing
// checks are silent; DCHECK activity follows the build configuration.
#include <gtest/gtest.h>

#include "common/check.hpp"

TEST(EcotuneCheck, PassingCheckIsSilent) {
  ECOTUNE_CHECK(2 + 2 == 4, "arithmetic holds");
  SUCCEED();
}

TEST(EcotuneCheck, ConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  ECOTUNE_CHECK(++calls == 1, "single evaluation");
  EXPECT_EQ(calls, 1);
}

TEST(EcotuneCheckDeathTest, FailingCheckAbortsWithContext) {
  EXPECT_DEATH(
      ECOTUNE_CHECK(1 == 2, "store fingerprint mismatch"),
      "CHECK failed at .*test_common_check\\.cpp:[0-9]+: \\(1 == 2\\) "
      "store fingerprint mismatch");
}

#if defined(ECOTUNE_ENABLE_DCHECKS) || !defined(NDEBUG)
TEST(EcotuneCheckDeathTest, DcheckIsActiveInThisBuild) {
  EXPECT_DEATH(ECOTUNE_DCHECK(false, "debug contract"), "debug contract");
}
#else
TEST(EcotuneCheck, DcheckCompilesOutButStillTypeChecks) {
  int touched = 0;
  // Unevaluated in this build: the side effect must not run.
  ECOTUNE_DCHECK((touched = 1) == 1, "never evaluated");
  EXPECT_EQ(touched, 0);
}
#endif

TEST(EcotuneCheck, DcheckPassingNeverAborts) {
  ECOTUNE_DCHECK(true, "holds in every build mode");
  SUCCEED();
}
