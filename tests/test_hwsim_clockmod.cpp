#include <gtest/gtest.h>

#include "hwsim/clock_modulation.hpp"
#include "hwsim/node.hpp"

namespace ecotune::hwsim {
namespace {

KernelTraits compute_kernel() {
  KernelTraits k;
  k.total_instructions = 1e10;
  k.ipc_peak = 2.0;
  k.dram_bytes = 1e8;
  k.uncore_cycles = 1e8;
  k.parallel_fraction = 0.995;
  k.overlap = 0.8;
  return k;
}

class ClockModulationTest : public ::testing::Test {
 protected:
  ClockModulationTest() : node_(haswell_ep_spec(), 0, Rng(1)) {
    node_.set_jitter(0.0);
  }
  hwsim::NodeSimulator node_;
};

TEST_F(ClockModulationTest, DefaultsToUnmodulated) {
  ClockModulation mod(node_);
  EXPECT_EQ(mod.duty_level(), 16);
  EXPECT_DOUBLE_EQ(mod.duty(), 1.0);
  const auto plain = node_.run_kernel(compute_kernel(), 24);
  const auto via_mod = mod.run_kernel(compute_kernel(), 24);
  EXPECT_DOUBLE_EQ(via_mod.time.value(), plain.time.value());
}

TEST_F(ClockModulationTest, SetDutyChargesMsrLatencyOnce) {
  ClockModulation mod(node_);
  const Seconds t0 = node_.now();
  EXPECT_GT(mod.set_duty_level(8).value(), 0.0);
  EXPECT_DOUBLE_EQ(mod.set_duty_level(8).value(), 0.0);  // unchanged
  EXPECT_DOUBLE_EQ((node_.now() - t0).value(),
                   node_.spec().core_switch_latency.value());
  EXPECT_THROW(mod.set_duty_level(0), PreconditionError);
  EXPECT_THROW(mod.set_duty_level(17), PreconditionError);
}

TEST_F(ClockModulationTest, HalfDutyRoughlyDoublesComputeTime) {
  ClockModulation mod(node_);
  const auto full = mod.run_kernel(compute_kernel(), 24);
  mod.set_duty_level(8);  // 50 %
  const auto half = mod.run_kernel(compute_kernel(), 24);
  const double ratio = half.time / full.time;
  EXPECT_GT(ratio, 1.8);   // compute share stretches ~2x (+ drain penalty)
  EXPECT_LT(ratio, 2.35);
}

TEST_F(ClockModulationTest, ModulationReducesPowerButLessThanProportionally) {
  ClockModulation mod(node_);
  const auto full = mod.run_kernel(compute_kernel(), 24);
  mod.set_duty_level(8);
  const auto half = mod.run_kernel(compute_kernel(), 24);
  // Node power drops (core dynamic gated)...
  EXPECT_LT(half.power.node().value(), full.power.node().value());
  // ...but static + uncore + base stay, so power reduction is far less
  // than the 2x slowdown: energy goes UP.
  EXPECT_GT(half.node_energy.value(), full.node_energy.value());
}

TEST_F(ClockModulationTest, DvfsBeatsModulationAtIsoSlowdown) {
  // The canonical result: at comparable slowdown, reducing the clock via
  // DVFS (voltage drops too) consumes less energy than duty-cycling at the
  // original voltage.
  const auto k = compute_kernel();

  // DVFS: 1.3 GHz vs 2.5 GHz is roughly a 1.9x slowdown for compute code.
  node_.set_all_core_freqs(CoreFreq::mhz(1300));
  const auto dvfs = node_.run_kernel(k, 24);
  node_.set_all_core_freqs(CoreFreq::mhz(2500));

  // Modulation at 50 % duty gives a comparable slowdown.
  ClockModulation mod(node_);
  mod.set_duty_level(8);
  const auto modulated = mod.run_kernel(k, 24);

  EXPECT_NEAR(modulated.time / dvfs.time, 1.0, 0.25);  // iso-ish slowdown
  EXPECT_LT(dvfs.node_energy.value(), modulated.node_energy.value());
  EXPECT_LT(dvfs.cpu_energy.value(), modulated.cpu_energy.value());
}

// Property sweep: time stretch is monotone in the duty level.
class DutySweep : public ::testing::TestWithParam<int> {};

TEST_P(DutySweep, DeeperModulationIsSlowerAndNeverCheaperPerWork) {
  hwsim::NodeSimulator node(haswell_ep_spec(), 0, Rng(2));
  node.set_jitter(0.0);
  ClockModulation mod(node);
  const auto k = compute_kernel();
  const auto full = mod.run_kernel(k, 24);

  mod.set_duty_level(GetParam());
  const auto modulated = mod.run_kernel(k, 24);
  EXPECT_GE(modulated.time.value(), full.time.value());
  EXPECT_GE(modulated.node_energy.value(), full.node_energy.value() * 0.999);
}

INSTANTIATE_TEST_SUITE_P(DutyLevels, DutySweep,
                         ::testing::Values(2, 4, 6, 8, 10, 12, 14, 16));

}  // namespace
}  // namespace ecotune::hwsim
