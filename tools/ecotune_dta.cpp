// Command-line front end for the full design-time analysis: trains the
// energy model, tunes a benchmark, prints the report and writes the tuning
// model for the RRL.
//
//   ecotune_dta --benchmark Lulesh [--objective energy] [--epochs 10]
//               [--radius 1] [--per-region] [--seed 42] [--jobs N]
//               [--output tuning_model.json] [--list]
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/dvfs_ufs_plugin.hpp"
#include "model/dataset.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

namespace {

struct CliOptions {
  std::string benchmark;
  std::string objective = "energy";
  std::string output;
  int epochs = 10;
  int radius = 1;
  bool per_region = false;
  std::uint64_t seed = 42;
  int jobs = 0;  // 0 = hardware concurrency
  bool list = false;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "ecotune_dta -- design-time analysis (DVFS/UFS/OpenMP tuning plugin)\n"
      "\n"
      "usage: ecotune_dta --benchmark <name> [options]\n"
      "\n"
      "options:\n"
      "  --benchmark <name>   benchmark to tune (see --list)\n"
      "  --objective <name>   energy|cpu_energy|time|edp|ed2p|tco "
      "(default energy)\n"
      "  --epochs <n>         training epochs for the energy model "
      "(default 10)\n"
      "  --radius <n>         verification neighborhood radius (default 1)\n"
      "  --per-region         per-region model-based prediction (Sec. VI)\n"
      "  --seed <n>           simulation seed (default 42)\n"
      "  --jobs <n>           parallel sweep workers (default: hardware\n"
      "                       concurrency; output is identical for any n)\n"
      "  --output <path>      write the tuning model JSON here\n"
      "  --list               list available benchmarks and exit\n"
      "  --help               this text\n";
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--benchmark") {
      const char* v = next("--benchmark");
      if (!v) return false;
      opts.benchmark = v;
    } else if (arg == "--objective") {
      const char* v = next("--objective");
      if (!v) return false;
      opts.objective = v;
    } else if (arg == "--epochs") {
      const char* v = next("--epochs");
      if (!v) return false;
      opts.epochs = std::atoi(v);
    } else if (arg == "--radius") {
      const char* v = next("--radius");
      if (!v) return false;
      opts.radius = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      opts.seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 0));
    } else if (arg == "--jobs") {
      const char* v = next("--jobs");
      if (!v) return false;
      char* end = nullptr;
      opts.jobs = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0') {
        std::cerr << "error: --jobs expects an integer, got '" << v << "'\n";
        return false;
      }
    } else if (arg == "--output") {
      const char* v = next("--output");
      if (!v) return false;
      opts.output = v;
    } else if (arg == "--per-region") {
      opts.per_region = true;
    } else if (arg == "--list") {
      opts.list = true;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }
  if (opts.help) {
    print_usage();
    return 0;
  }
  if (opts.list) {
    for (const auto& b : workload::BenchmarkSuite::all())
      std::cout << b.name() << "  (" << b.suite() << ", "
                << workload::to_string(b.model()) << ", "
                << b.regions().size() << " regions)\n";
    return 0;
  }
  if (opts.benchmark.empty()) {
    print_usage();
    return 2;
  }

  try {
    const auto& app = workload::BenchmarkSuite::by_name(opts.benchmark);

    const int jobs = resolve_jobs(opts.jobs);
    std::cout << "training energy model (" << opts.epochs << " epochs)...\n";
    hwsim::NodeSimulator train_node(hwsim::haswell_ep_spec(), 0,
                                    Rng(opts.seed));
    train_node.set_jitter(0.002);
    model::AcquisitionOptions acq_opts;
    acq_opts.jobs = jobs;
    model::DataAcquisition acq(train_node, acq_opts);
    model::EnergyModel energy_model;
    energy_model.train(
        acq.acquire(workload::BenchmarkSuite::training_set()), opts.epochs);

    hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 1,
                              Rng(opts.seed + 1));
    node.set_jitter(0.002);

    core::DvfsUfsPlugin::Options plugin_opts;
    plugin_opts.config.objective = opts.objective;
    plugin_opts.config.neighborhood_radius = opts.radius;
    plugin_opts.config.per_region_prediction = opts.per_region;
    plugin_opts.engine.jobs = jobs;
    core::DvfsUfsPlugin plugin(energy_model, plugin_opts);
    const auto result = plugin.run_dta(app, node);

    std::cout << "\n=== " << app.name() << " (" << opts.objective
              << " objective) ===\n"
              << "significant regions : "
              << result.dyn_report.significant.size() << '\n'
              << "phase threads       : " << result.phase_threads << '\n'
              << "model recommendation: "
              << to_string(result.recommendation.cf) << '|'
              << to_string(result.recommendation.ucf) << '\n'
              << "phase best          : " << to_string(result.phase_best)
              << '\n'
              << "experiments         : " << result.thread_scenarios << " + "
              << result.analysis_runs << " + " << result.frequency_scenarios
              << " in " << result.app_runs << " app runs ("
              << TextTable::num(result.tuning_time.value(), 1)
              << " s simulated)\n\n";

    TextTable table("per-region configuration");
    table.header({"region", "threads", "CF", "UCF", "scenario"});
    for (const auto& sig : result.dyn_report.significant) {
      auto it = result.region_best.find(sig.name);
      if (it == result.region_best.end()) continue;
      table.row({sig.name, std::to_string(it->second.threads),
                 to_string(it->second.core), to_string(it->second.uncore),
                 std::to_string(result.tuning_model.scenario_id(sig.name))});
    }
    table.print(std::cout);

    if (!opts.output.empty()) {
      result.tuning_model.save(opts.output);
      std::cout << "\ntuning model written to " << opts.output << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
