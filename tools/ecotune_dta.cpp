// Command-line front end for the full design-time analysis: trains the
// energy model, tunes one or more benchmarks and renders the report --
// classic text tables or machine-readable JSON -- via api::Session, the
// same public facade the examples and bench drivers use.
//
//   ecotune_dta --benchmark Lulesh [--objective energy] [--epochs 10]
//               [--radius 1] [--per-region] [--seed 42] [--jobs N]
//               [--cache-dir DIR] [--cache-mode rw|ro|off]
//               [--format text|json]
//               [--output tuning_model.json] [--list]
//
// Repeating --benchmark runs a campaign: the model is trained once and all
// benchmarks are analyzed concurrently (output is jobs-invariant).
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/report.hpp"
#include "api/session.hpp"
#include "common/cli.hpp"
#include "ptf/objectives.hpp"
#include "tuners/registry.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

namespace {

struct CliOptions {
  std::vector<std::string> benchmarks;
  std::string tuner = "dta";
  std::string objective = "energy";
  std::string output;
  std::string cache_dir;
  std::string cache_mode;  // empty = rw when --cache-dir given, else off
  std::string format = "text";
  int epochs = 10;
  int radius = 1;
  bool per_region = false;
  std::uint64_t seed = 42;
  int jobs = 0;  // 0 = hardware concurrency
  bool list = false;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "ecotune_dta -- design-time analysis (DVFS/UFS/OpenMP tuning plugin)\n"
      "\n"
      "usage: ecotune_dta --benchmark <name> [options]\n"
      "\n"
      "options:\n"
      "  --benchmark <name>   benchmark to tune (see --list); repeat the\n"
      "                       flag to run a multi-benchmark campaign that\n"
      "                       trains the model once and analyzes all\n"
      "                       benchmarks concurrently\n"
      "  --tuner <name>       tuning strategy (default dta, the classic\n"
      "                       design-time analysis; other names render a\n"
      "                       strategy-agnostic outcome; registered: " +
          tuners::default_registry().names_joined() +
      ")\n"
      "  --objective <name>   " +
          ptf::objective_names_joined() +
      "\n                       (default energy; power_cap:<W> and\n"
      "                       energy_budget:<J> parameterize the cap)\n"
      "  --epochs <n>         training epochs for the energy model "
      "(default 10)\n"
      "  --radius <n>         verification neighborhood radius (default 1)\n"
      "  --per-region         per-region model-based prediction (Sec. VI)\n"
      "  --seed <n>           simulation seed (default 42)\n"
      "  --jobs <n>           parallel sweep workers (default: hardware\n"
      "                       concurrency; output is identical for any n)\n"
      "  --cache-dir <dir>    persistent measurement store; a warm rerun\n"
      "                       answers seen measurements from the store and\n"
      "                       prints byte-identical output on stdout\n"
      "  --cache-mode <m>     rw|ro|off (default: rw with --cache-dir,\n"
      "                       off otherwise)\n"
      "  --format <f>         text|json (default text); json emits one\n"
      "                       document parseable by common/json\n"
      "  --output <path>      write the tuning model JSON here (single\n"
      "                       --benchmark only)\n"
      "  --list               list available benchmarks and exit\n"
      "  --help               this text\n";
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) {
      return cli::next_arg_value(argc, argv, i, flag);
    };
    if (arg == "--benchmark") {
      const char* v = next("--benchmark");
      if (!v) return false;
      opts.benchmarks.emplace_back(v);
    } else if (arg == "--tuner") {
      const char* v = next("--tuner");
      if (!v) return false;
      opts.tuner = v;
      if (!tuners::default_registry().contains(opts.tuner)) {
        std::cerr << "error: unknown tuner '" << opts.tuner
                  << "' (registered: "
                  << tuners::default_registry().names_joined() << ")\n";
        return false;
      }
    } else if (arg == "--objective") {
      const char* v = next("--objective");
      if (!v) return false;
      opts.objective = v;
      // Validate at parse time so an unknown objective is a CLI error
      // (exit 2 + the registered list), not a mid-run exception.
      try {
        (void)ptf::make_objective(opts.objective);
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what()
                  << " (registered: " << ptf::objective_names_joined()
                  << ")\n";
        return false;
      }
    } else if (arg == "--epochs") {
      const char* v = next("--epochs");
      if (!v || !cli::parse_strict_int("--epochs", v, 1, opts.epochs))
        return false;
    } else if (arg == "--radius") {
      const char* v = next("--radius");
      if (!v || !cli::parse_strict_int("--radius", v, 0, opts.radius))
        return false;
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v ||
          !cli::parse_strict_int("--seed", v, std::uint64_t{0}, opts.seed))
        return false;
    } else if (arg == "--jobs") {
      const char* v = next("--jobs");
      if (!v || !cli::parse_strict_int("--jobs", v, 0, opts.jobs))
        return false;
    } else if (arg == "--cache-dir") {
      const char* v = next("--cache-dir");
      if (!v) return false;
      opts.cache_dir = v;
    } else if (arg == "--cache-mode") {
      const char* v = next("--cache-mode");
      if (!v) return false;
      opts.cache_mode = v;
    } else if (arg == "--format") {
      const char* v = next("--format");
      if (!v) return false;
      opts.format = v;
      if (opts.format != "text" && opts.format != "json") {
        std::cerr << "error: --format expects text or json, got '"
                  << opts.format << "'\n";
        return false;
      }
    } else if (arg == "--output") {
      const char* v = next("--output");
      if (!v) return false;
      opts.output = v;
    } else if (arg == "--per-region") {
      opts.per_region = true;
    } else if (arg == "--list") {
      opts.list = true;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }
  if (opts.help) {
    print_usage();
    return 0;
  }
  if (opts.list) {
    for (const auto& b : workload::BenchmarkSuite::all())
      std::cout << b.name() << "  (" << b.suite() << ", "
                << workload::to_string(b.model()) << ", "
                << b.regions().size() << " regions)\n";
    return 0;
  }
  if (opts.benchmarks.empty()) {
    print_usage();
    return 2;
  }
  if (!opts.output.empty() && opts.benchmarks.size() > 1) {
    std::cerr << "error: --output supports a single --benchmark\n";
    return 2;
  }
  if (!opts.output.empty() && opts.tuner != "dta") {
    std::cerr << "error: --output requires the dta tuner\n";
    return 2;
  }

  // The Session owns the whole stack (nodes, acquisition, model, store,
  // jobs policy). Store-open failures (bad mode, unwritable path) are CLI
  // errors: exit 2 with a clean message, like every flag-validation path.
  auto session = api::open_session_or_exit(
      api::SessionConfig{}
          .seed(opts.seed)
          .jobs(opts.jobs)
          .cache(opts.cache_dir, opts.cache_mode)
          .scope("ecotune_dta")
          .objective(opts.objective)
          .epochs(opts.epochs)
          .radius(opts.radius)
          .per_region(opts.per_region));

  std::unique_ptr<api::ReportSink> sink;
  if (opts.format == "json")
    sink = std::make_unique<api::JsonReportSink>(std::cout);
  else
    sink = std::make_unique<api::TextReportSink>(std::cout);

  try {
    // Resolve every benchmark before producing output, so an unknown name
    // fails cleanly without a half-rendered document.
    std::vector<workload::Benchmark> apps;
    apps.reserve(opts.benchmarks.size());
    for (const auto& name : opts.benchmarks)
      apps.push_back(workload::BenchmarkSuite::by_name(name));

    // Non-dta strategies run through the common Tuner seam and render a
    // strategy-agnostic outcome; only the dta path below trains eagerly
    // (the others never need the energy model).
    if (opts.tuner != "dta") {
      for (const auto& app : apps) {
        api::TunerReport report;
        report.benchmark = app.name();
        report.outcome = session->tune(opts.tuner, app, opts.objective);
        sink->tuner(report);
      }
      sink->close();
      session->print_store_summary();
      return 0;
    }

    sink->training_started(opts.epochs);
    session->train_model();

    if (apps.size() == 1) {
      const api::DtaReport report = session->run_dta(apps.front());
      sink->dta(report);
      if (!opts.output.empty()) {
        report.result.tuning_model.save(opts.output);
        sink->model_written(report.benchmark, opts.output);
      }
    } else {
      const api::CampaignReport campaign = session->run_dta_campaign(apps);
      for (const auto& report : campaign.reports) sink->dta(report);
    }
    sink->close();
    // Hit/miss accounting goes to stderr so stdout stays byte-identical
    // between cold and warm runs.
    session->print_store_summary();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
