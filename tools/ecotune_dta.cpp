// Command-line front end for the full design-time analysis: trains the
// energy model, tunes a benchmark, prints the report and writes the tuning
// model for the RRL.
//
//   ecotune_dta --benchmark Lulesh [--objective energy] [--epochs 10]
//               [--radius 1] [--per-region] [--seed 42] [--jobs N]
//               [--cache-dir DIR] [--cache-mode rw|ro|off]
//               [--output tuning_model.json] [--list]
#include <charconv>
#include <cstdint>
#include <iostream>
#include <string>
#include <system_error>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/dvfs_ufs_plugin.hpp"
#include "model/dataset.hpp"
#include "store/measurement_store.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

namespace {

struct CliOptions {
  std::string benchmark;
  std::string objective = "energy";
  std::string output;
  std::string cache_dir;
  std::string cache_mode;  // empty = rw when --cache-dir given, else off
  int epochs = 10;
  int radius = 1;
  bool per_region = false;
  std::uint64_t seed = 42;
  int jobs = 0;  // 0 = hardware concurrency
  bool list = false;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "ecotune_dta -- design-time analysis (DVFS/UFS/OpenMP tuning plugin)\n"
      "\n"
      "usage: ecotune_dta --benchmark <name> [options]\n"
      "\n"
      "options:\n"
      "  --benchmark <name>   benchmark to tune (see --list)\n"
      "  --objective <name>   energy|cpu_energy|time|edp|ed2p|tco "
      "(default energy)\n"
      "  --epochs <n>         training epochs for the energy model "
      "(default 10)\n"
      "  --radius <n>         verification neighborhood radius (default 1)\n"
      "  --per-region         per-region model-based prediction (Sec. VI)\n"
      "  --seed <n>           simulation seed (default 42)\n"
      "  --jobs <n>           parallel sweep workers (default: hardware\n"
      "                       concurrency; output is identical for any n)\n"
      "  --cache-dir <dir>    persistent measurement store; a warm rerun\n"
      "                       answers seen measurements from the store and\n"
      "                       prints byte-identical output on stdout\n"
      "  --cache-mode <m>     rw|ro|off (default: rw with --cache-dir,\n"
      "                       off otherwise)\n"
      "  --output <path>      write the tuning model JSON here\n"
      "  --list               list available benchmarks and exit\n"
      "  --help               this text\n";
}

/// Strict integer parsing: the whole value must be a base-10 integer within
/// [min_value, max]. std::atoi silently returned 0 on garbage, which turned
/// e.g. "--epochs ten" into a zero-epoch (untrained) model.
template <class T>
bool parse_strict_int(const char* flag, const std::string& text, T min_value,
                      T& out) {
  T value{};
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (res.ec != std::errc() || res.ptr != text.data() + text.size()) {
    std::cerr << "error: " << flag << " expects an integer, got '" << text
              << "'\n";
    return false;
  }
  if (value < min_value) {
    std::cerr << "error: " << flag << " must be >= " << +min_value
              << ", got " << +value << '\n';
    return false;
  }
  out = value;
  return true;
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--benchmark") {
      const char* v = next("--benchmark");
      if (!v) return false;
      opts.benchmark = v;
    } else if (arg == "--objective") {
      const char* v = next("--objective");
      if (!v) return false;
      opts.objective = v;
    } else if (arg == "--epochs") {
      const char* v = next("--epochs");
      if (!v || !parse_strict_int("--epochs", v, 1, opts.epochs))
        return false;
    } else if (arg == "--radius") {
      const char* v = next("--radius");
      if (!v || !parse_strict_int("--radius", v, 0, opts.radius))
        return false;
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v ||
          !parse_strict_int("--seed", v, std::uint64_t{0}, opts.seed))
        return false;
    } else if (arg == "--jobs") {
      const char* v = next("--jobs");
      if (!v || !parse_strict_int("--jobs", v, 0, opts.jobs)) return false;
    } else if (arg == "--cache-dir") {
      const char* v = next("--cache-dir");
      if (!v) return false;
      opts.cache_dir = v;
    } else if (arg == "--cache-mode") {
      const char* v = next("--cache-mode");
      if (!v) return false;
      opts.cache_mode = v;
    } else if (arg == "--output") {
      const char* v = next("--output");
      if (!v) return false;
      opts.output = v;
    } else if (arg == "--per-region") {
      opts.per_region = true;
    } else if (arg == "--list") {
      opts.list = true;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }
  if (opts.help) {
    print_usage();
    return 0;
  }
  if (opts.list) {
    for (const auto& b : workload::BenchmarkSuite::all())
      std::cout << b.name() << "  (" << b.suite() << ", "
                << workload::to_string(b.model()) << ", "
                << b.regions().size() << " regions)\n";
    return 0;
  }
  if (opts.benchmark.empty()) {
    print_usage();
    return 2;
  }

  // Persistent measurement store: --cache-dir alone means rw. Open failures
  // (bad mode, missing dir, unwritable path) are CLI errors: exit 2 with a
  // clean message, like every other flag-validation path.
  store::MeasurementStore cache;
  try {
    cache.open(opts.cache_dir,
               store::resolve_store_mode(opts.cache_mode, opts.cache_dir),
               "ecotune_dta");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }

  try {
    const auto& app = workload::BenchmarkSuite::by_name(opts.benchmark);

    const int jobs = resolve_jobs(opts.jobs);
    std::cout << "training energy model (" << opts.epochs << " epochs)...\n";
    hwsim::NodeSimulator train_node(hwsim::haswell_ep_spec(), 0,
                                    Rng(opts.seed));
    train_node.set_jitter(0.002);
    model::AcquisitionOptions acq_opts;
    acq_opts.jobs = jobs;
    acq_opts.store = &cache;
    model::DataAcquisition acq(train_node, acq_opts);
    model::EnergyModelConfig model_cfg;
    model_cfg.jobs = jobs;  // candidate pool trains concurrently, bitwise
                            // identical for any value
    model::EnergyModel energy_model(model_cfg);
    energy_model.train(
        acq.acquire(workload::BenchmarkSuite::training_set()), opts.epochs);

    hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 1,
                              Rng(opts.seed + 1));
    node.set_jitter(0.002);

    core::DvfsUfsPlugin::Options plugin_opts;
    plugin_opts.config.objective = opts.objective;
    plugin_opts.config.neighborhood_radius = opts.radius;
    plugin_opts.config.per_region_prediction = opts.per_region;
    plugin_opts.engine.jobs = jobs;
    plugin_opts.engine.store = &cache;
    core::DvfsUfsPlugin plugin(energy_model, plugin_opts);
    const auto result = plugin.run_dta(app, node);

    std::cout << "\n=== " << app.name() << " (" << opts.objective
              << " objective) ===\n"
              << "significant regions : "
              << result.dyn_report.significant.size() << '\n'
              << "phase threads       : " << result.phase_threads << '\n'
              << "model recommendation: "
              << to_string(result.recommendation.cf) << '|'
              << to_string(result.recommendation.ucf) << '\n'
              << "phase best          : " << to_string(result.phase_best)
              << '\n'
              << "experiments         : " << result.thread_scenarios << " + "
              << result.analysis_runs << " + " << result.frequency_scenarios
              << " in " << result.app_runs << " app runs ("
              << TextTable::num(result.tuning_time.value(), 1)
              << " s simulated)\n\n";

    TextTable table("per-region configuration");
    table.header({"region", "threads", "CF", "UCF", "scenario"});
    for (const auto& sig : result.dyn_report.significant) {
      auto it = result.region_best.find(sig.name);
      if (it == result.region_best.end()) continue;
      table.row({sig.name, std::to_string(it->second.threads),
                 to_string(it->second.core), to_string(it->second.uncore),
                 std::to_string(result.tuning_model.scenario_id(sig.name))});
    }
    table.print(std::cout);

    if (!opts.output.empty()) {
      result.tuning_model.save(opts.output);
      std::cout << "\ntuning model written to " << opts.output << '\n';
    }
    // Hit/miss accounting goes to stderr so stdout stays byte-identical
    // between cold and warm runs.
    if (cache.enabled()) std::cerr << cache.summary() << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
