// Machine-readable performance report of the model/NN hot path: the
// components every table/figure driver funnels through (MLP training,
// scalar vs batched inference, the full-grid frequency recommendation).
// Emits JSON so the perf trajectory can be tracked across PRs
// (BENCH_*.json at the repo root).
//
//   perf_report [--out FILE] [--repeats N] [--quick]
//               [--extra key=value]...
//   perf_report --compare OLD.json NEW.json
//   perf_report --trajectory [DIR]
//
// Workloads mirror the reproduction pipeline: the training benchmark runs
// at fig5 scale (19152 x 9 standardized samples, 10 consecutive epochs on
// one network, running ADAM timestep), inference sweeps the 14 x 18
// Haswell-EP frequency grid. Each metric reports the minimum over
// --repeats runs (the standard robust microbenchmark estimator).
//
// --compare and --trajectory render previously written reports instead of
// benchmarking: compare prints an old-vs-new speedup table (all metrics
// are lower-is-better, so speedup = old/new), trajectory tabulates every
// BENCH_PR*.json checked in at the repo root in PR order. Both understand
// the two checked-in schemas: ecotune-perf-report/1 (metrics under
// "results") and the older ecotune-perf-trajectory/1 (metrics under
// "current").
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/numbers.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "hwsim/cpu_spec.hpp"
#include "model/energy_model.hpp"
#include "model/features.hpp"
#include "nn/mlp.hpp"
#include "stats/linalg.hpp"
#include "store/measurement_store.hpp"

using namespace ecotune;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Options {
  std::string out;
  int repeats = 3;
  bool quick = false;
  std::vector<std::pair<std::string, std::string>> extra;
};

[[noreturn]] void usage(int code) {
  std::cout << "usage: perf_report [--out FILE] [--repeats N] [--quick]\n"
               "                   [--extra key=value]...\n"
               "       perf_report --compare OLD.json NEW.json\n"
               "       perf_report --trajectory [DIR]\n"
               "  --out FILE       write the JSON report here (default: "
               "stdout)\n"
               "  --repeats N      repetitions per metric; the minimum is "
               "reported (default 3)\n"
               "  --quick          smaller workloads (CI smoke test)\n"
               "  --extra k=v      attach an externally measured metric "
               "(e.g. fig5_wall_seconds=12)\n"
               "  --compare A B    print a speedup table between two "
               "checked-in reports\n"
               "  --trajectory     tabulate all BENCH_PR*.json in DIR "
               "(default: cwd) in PR order\n";
  std::exit(code);
}

/// Flat metric map from either checked-in report schema. Non-metric
/// numeric bookkeeping ("pr") is excluded; string fields filter out via
/// the is_number() check.
std::map<std::string, double> load_metrics(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "error: cannot read " << path << '\n';
    std::exit(2);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  std::map<std::string, double> out;
  try {
    const Json j = Json::parse(ss.str());
    const std::string schema = j.at("schema").as_string();
    const Json* src = nullptr;
    if (schema == "ecotune-perf-report/1") {
      src = &j.at("results");
    } else if (schema == "ecotune-perf-trajectory/1") {
      src = &j.at("current");
    } else {
      std::cerr << "error: " << path << ": unknown schema '" << schema
                << "'\n";
      std::exit(2);
    }
    for (const auto& [k, v] : src->as_object())
      if (k != "pr" && v.is_number()) out[k] = v.as_number();
  } catch (const std::exception& e) {
    std::cerr << "error: " << path << ": " << e.what() << '\n';
    std::exit(2);
  }
  return out;
}

int run_compare(const std::string& old_path, const std::string& new_path) {
  const auto before = load_metrics(old_path);
  const auto after = load_metrics(new_path);
  std::map<std::string, std::pair<const double*, const double*>> rows;
  for (const auto& [k, v] : before) rows[k].first = &v;
  for (const auto& [k, v] : after) rows[k].second = &v;
  std::size_t width = 6;
  for (const auto& [k, row] : rows) width = std::max(width, k.size());
  std::cout << std::left << std::setw(static_cast<int>(width)) << "metric"
            << std::right << std::setw(14) << "old" << std::setw(14)
            << "new" << std::setw(10) << "speedup" << '\n';
  for (const auto& [k, row] : rows) {
    std::cout << std::left << std::setw(static_cast<int>(width)) << k
              << std::right << std::fixed << std::setprecision(2);
    if (row.first != nullptr)
      std::cout << std::setw(14) << *row.first;
    else
      std::cout << std::setw(14) << "-";
    if (row.second != nullptr)
      std::cout << std::setw(14) << *row.second;
    else
      std::cout << std::setw(14) << "-";
    // Every tracked metric is lower-is-better (ns/us/seconds per unit of
    // work), so the improvement factor is old/new.
    if (row.first != nullptr && row.second != nullptr && *row.second > 0.0)
      std::cout << std::setw(9) << *row.first / *row.second << 'x';
    else
      std::cout << std::setw(10) << "-";
    std::cout << '\n';
  }
  return 0;
}

int run_trajectory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::map<int, std::map<std::string, double>> by_pr;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_PR", 0) != 0) continue;
    const auto dot = name.find(".json");
    if (dot == std::string::npos) continue;
    const std::string num = name.substr(8, dot - 8);
    int pr = 0;
    const auto res =
        std::from_chars(num.data(), num.data() + num.size(), pr, 10);
    if (res.ec != std::errc() || res.ptr != num.data() + num.size())
      continue;
    by_pr[pr] = load_metrics(entry.path().string());
  }
  if (ec) {
    std::cerr << "error: cannot list " << dir << ": " << ec.message()
              << '\n';
    return 2;
  }
  if (by_pr.empty()) {
    std::cerr << "error: no BENCH_PR*.json found in " << dir << '\n';
    return 2;
  }
  std::map<std::string, bool> metrics;
  for (const auto& [pr, m] : by_pr)
    for (const auto& [k, v] : m) metrics[k] = true;
  std::size_t width = 6;
  for (const auto& [k, unused] : metrics) width = std::max(width, k.size());
  std::cout << std::left << std::setw(static_cast<int>(width)) << "metric"
            << std::right;
  for (const auto& [pr, m] : by_pr)
    std::cout << std::setw(14) << ("PR" + std::to_string(pr));
  std::cout << '\n';
  for (const auto& [k, unused] : metrics) {
    std::cout << std::left << std::setw(static_cast<int>(width)) << k
              << std::right << std::fixed << std::setprecision(2);
    for (const auto& [pr, m] : by_pr) {
      const auto it = m.find(k);
      if (it == m.end())
        std::cout << std::setw(14) << "-";
      else
        std::cout << std::setw(14) << it->second;
    }
    std::cout << '\n';
  }
  return 0;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      o.out = next("--out");
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      // Strict parse (repo convention since the PR-3 CLI hardening):
      // garbage or out-of-range values exit 2 instead of being coerced.
      const std::string v = next("--repeats");
      int repeats = 0;
      const auto res =
          std::from_chars(v.data(), v.data() + v.size(), repeats, 10);
      if (res.ec != std::errc() || res.ptr != v.data() + v.size() ||
          repeats < 1) {
        std::cerr << "error: --repeats expects an integer >= 1, got '" << v
                  << "'\n";
        std::exit(2);
      }
      o.repeats = repeats;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      o.quick = true;
    } else if (std::strcmp(argv[i], "--extra") == 0) {
      const std::string kv = next("--extra");
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        std::cerr << "error: --extra expects key=value, got '" << kv << "'\n";
        std::exit(2);
      }
      o.extra.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(0);
    } else {
      std::cerr << "error: unknown argument '" << argv[i] << "'\n";
      usage(2);
    }
  }
  return o;
}

double min_of(int repeats, double (*fn)(const Options&), const Options& o) {
  double best = fn(o);
  for (int r = 1; r < repeats; ++r) best = std::min(best, fn(o));
  return best;
}

double bench_train_epoch(const Options& o) {
  const std::size_t n = o.quick ? 2048 : 19152;
  const int epochs = o.quick ? 3 : 10;
  stats::Matrix x;
  std::vector<double> y;
  bench::synthetic_training_data(n, x, y);
  Rng rng(42);
  nn::Mlp net(nn::MlpConfig{}, rng);
  Rng shuffle(43);
  const auto t0 = Clock::now();
  for (int e = 0; e < epochs; ++e) net.train_epoch(x, y, shuffle);
  return seconds_since(t0) / epochs / static_cast<double>(n) * 1e9;
}

double bench_forward_scalar(const Options& o) {
  const int iters = o.quick ? 100000 : 1000000;
  Rng rng(7);
  const nn::Mlp net(nn::MlpConfig{}, rng);
  std::vector<double> x(9, 0.3);
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    x[8] = static_cast<double>(i % 17) * 0.1;
    acc += net.predict(x);
  }
  const double ns = seconds_since(t0) / iters * 1e9;
  if (acc == 0.12345) std::cerr << "";  // keep the accumulator alive
  return ns;
}

double bench_forward_batch(const Options& o) {
  const int iters = o.quick ? 1000 : 10000;
  Rng rng(7);
  const nn::Mlp net(nn::MlpConfig{}, rng);
  const stats::Matrix x = bench::synthetic_grid_batch();
  const std::size_t grid = x.rows();
  nn::Workspace ws;
  std::vector<double> out(grid);
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    net.forward_batch(x, std::span<double>(out), ws);
    acc += out[static_cast<std::size_t>(i) % grid];
  }
  const double ns =
      seconds_since(t0) / iters / static_cast<double>(grid) * 1e9;
  if (acc == 0.12345) std::cerr << "";
  return ns;
}

double bench_grid_recommend(const Options& o) {
  const int iters = o.quick ? 200 : 2000;
  const model::EnergyModel m = bench::untrained_ensemble_model(5);
  const hwsim::CpuSpec spec = hwsim::haswell_ep_spec();
  const std::map<std::string, double> rates = bench::synthetic_counter_rates();
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    acc += m.recommend(rates, spec).predicted_normalized_energy;
  }
  const double us = seconds_since(t0) / iters * 1e6;
  if (acc == 0.12345) std::cerr << "";
  return us;
}

double bench_model_predict(const Options& o) {
  const int iters = o.quick ? 50000 : 500000;
  const model::EnergyModel m = bench::untrained_ensemble_model(5);
  std::vector<double> f(9, 0.5);
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    f[8] = static_cast<double>(i % 13) * 0.2;
    acc += m.predict(f);
  }
  const double ns = seconds_since(t0) / iters * 1e9;
  if (acc == 0.12345) std::cerr << "";
  return ns;
}

// --- measurement-store contention (PR 10, bench/store_contention) -------
//
// Concurrent hit-path lookups against the sharded in-memory index versus
// the same index forced onto one shard (the pre-sharding single-mutex
// design). This is the load the tuning service's worker pool puts on the
// shared store. The standalone bench/store_contention driver prints the
// full table; the six cells tracked here pin the trajectory.

std::vector<store::MeasurementKey> store_bench_keys(std::size_t count) {
  std::vector<store::MeasurementKey> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    store::MeasurementKey key;
    key.task = "contention/task-";
    key.task += std::to_string(i);
    key.fingerprint = 0x9e3779b97f4a7c15ull ^ (i * 0x100000001b3ull);
    keys.push_back(std::move(key));
  }
  return keys;
}

/// Populates (once per process) and returns the backing cache directory
/// shared by every store-contention cell.
const std::string& store_bench_dir(const Options& o) {
  static std::string dir;
  if (dir.empty()) {
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() / "ecotune_perf_report_store";
    std::error_code ec;
    fs::remove_all(path, ec);
    store::MeasurementStore writer;
    writer.open(path.string(), store::StoreMode::kReadWrite, "bench");
    const auto keys = store_bench_keys(o.quick ? 256 : 2048);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      Json payload = Json::object();
      payload["value"] = static_cast<double>(i) * 0.5;
      writer.insert(keys[i], payload);
    }
    dir = path.string();
  }
  return dir;
}

double bench_store_lookup(const Options& o, std::size_t shards,
                          int threads) {
  const auto keys = store_bench_keys(o.quick ? 256 : 2048);
  const std::size_t rounds = o.quick ? 8 : 64;
  // ro mode keeps the disk appender (and its mutex) idle: the cell
  // measures pure index contention on the hit path, which never misses
  // and never writes.
  store::MeasurementStore store;
  store.open(store_bench_dir(o), store::StoreMode::kReadOnly, "bench",
             shards);
  ThreadPool pool(threads);
  const std::size_t n = keys.size();
  const auto t0 = Clock::now();
  pool.run(static_cast<std::size_t>(threads), [&](std::size_t task) {
    const std::size_t offset = task * (n / static_cast<std::size_t>(threads));
    std::size_t alive = 0;
    for (std::size_t r = 0; r < rounds; ++r)
      for (std::size_t i = 0; i < n; ++i)
        if (store.lookup(keys[(offset + i) % n]).has_value()) ++alive;
    if (alive != rounds * n) {
      std::cerr << "error: store lookup missed on the hit path\n";
      std::exit(1);
    }
  });
  const double ops =
      static_cast<double>(threads) * static_cast<double>(rounds * n);
  return seconds_since(t0) / ops * 1e9;
}

double bench_store_s1_t1(const Options& o) { return bench_store_lookup(o, 1, 1); }
double bench_store_s1_t4(const Options& o) { return bench_store_lookup(o, 1, 4); }
double bench_store_s1_t16(const Options& o) { return bench_store_lookup(o, 1, 16); }
double bench_store_s16_t1(const Options& o) { return bench_store_lookup(o, 16, 1); }
double bench_store_s16_t4(const Options& o) { return bench_store_lookup(o, 16, 4); }
double bench_store_s16_t16(const Options& o) { return bench_store_lookup(o, 16, 16); }

}  // namespace

int main(int argc, char** argv) {
  // Report-rendering modes: no benchmarking, exit before the bench setup.
  if (argc > 1 && std::strcmp(argv[1], "--compare") == 0) {
    if (argc != 4) {
      std::cerr << "error: --compare needs exactly two report files\n";
      return 2;
    }
    return run_compare(argv[2], argv[3]);
  }
  if (argc > 1 && std::strcmp(argv[1], "--trajectory") == 0) {
    if (argc > 3) {
      std::cerr << "error: --trajectory takes at most one directory\n";
      return 2;
    }
    return run_trajectory(argc == 3 ? argv[2] : ".");
  }

  const Options o = parse(argc, argv);

  Json results = Json::object();
  results["mlp_train_epoch_ns_per_sample"] =
      min_of(o.repeats, bench_train_epoch, o);
  results["mlp_forward_scalar_ns_per_point"] =
      min_of(o.repeats, bench_forward_scalar, o);
  results["mlp_forward_batch_ns_per_point"] =
      min_of(o.repeats, bench_forward_batch, o);
  results["grid_recommend_us_per_call"] =
      min_of(o.repeats, bench_grid_recommend, o);
  results["energy_model_predict_ns_per_call"] =
      min_of(o.repeats, bench_model_predict, o);
  results["store_lookup_shard1_t1_ns_per_op"] =
      min_of(o.repeats, bench_store_s1_t1, o);
  results["store_lookup_shard1_t4_ns_per_op"] =
      min_of(o.repeats, bench_store_s1_t4, o);
  results["store_lookup_shard1_t16_ns_per_op"] =
      min_of(o.repeats, bench_store_s1_t16, o);
  results["store_lookup_shard16_t1_ns_per_op"] =
      min_of(o.repeats, bench_store_s16_t1, o);
  results["store_lookup_shard16_t4_ns_per_op"] =
      min_of(o.repeats, bench_store_s16_t4, o);
  results["store_lookup_shard16_t16_ns_per_op"] =
      min_of(o.repeats, bench_store_s16_t16, o);
  {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::remove_all(fs::temp_directory_path() / "ecotune_perf_report_store",
                   ec);
  }
  for (const auto& [k, v] : o.extra) {
    double num = 0.0;
    if (ecotune::parse_double(v, num)) {
      results[k] = num;
    } else {
      results[k] = v;
    }
  }

  Json report = Json::object();
  report["schema"] = std::string("ecotune-perf-report/1");
  Json workloads = Json::object();
  workloads["mlp_train_epoch"] = std::string(
      o.quick ? "2048x9 samples, 3 epochs, 9-5-5-1 MLP, per-sample ADAM"
              : "19152x9 samples, 10 epochs, 9-5-5-1 MLP, per-sample ADAM "
                "(one fig5 candidate training)");
  workloads["mlp_forward"] =
      std::string("9-5-5-1 MLP, single point vs 252-row batch (14x18 grid)");
  workloads["grid_recommend"] = std::string(
      "EnergyModel (5-member ensemble) argmin over the 14x18 CF/UCF grid");
  workloads["store_lookup"] = std::string(
      o.quick ? "MeasurementStore hit-path lookups, 256 keys x 8 rounds "
                "per thread; shardN = index shard count, tN = pool threads"
              : "MeasurementStore hit-path lookups, 2048 keys x 64 rounds "
                "per thread; shardN = index shard count, tN = pool threads "
                "(shard1 = the pre-PR-10 single-mutex index)");
  report["workloads"] = std::move(workloads);
  report["estimator"] =
      std::string("min over " + std::to_string(o.repeats) + " repeats");
  report["results"] = std::move(results);

  const std::string text = report.dump(2) + "\n";
  if (o.out.empty()) {
    std::cout << text;
  } else {
    std::ofstream f(o.out);
    if (!f) {
      std::cerr << "error: cannot write " << o.out << '\n';
      return 2;
    }
    f << text;
    std::cout << "perf report written to " << o.out << '\n';
  }
  return 0;
}
