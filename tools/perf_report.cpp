// Machine-readable performance report of the model/NN hot path: the
// components every table/figure driver funnels through (MLP training,
// scalar vs batched inference, the full-grid frequency recommendation).
// Emits JSON so the perf trajectory can be tracked across PRs
// (BENCH_*.json at the repo root).
//
//   perf_report [--out FILE] [--repeats N] [--quick]
//               [--extra key=value]...
//
// Workloads mirror the reproduction pipeline: the training benchmark runs
// at fig5 scale (19152 x 9 standardized samples, 10 consecutive epochs on
// one network, running ADAM timestep), inference sweeps the 14 x 18
// Haswell-EP frequency grid. Each metric reports the minimum over
// --repeats runs (the standard robust microbenchmark estimator).
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <system_error>
#include <vector>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/numbers.hpp"
#include "common/rng.hpp"
#include "hwsim/cpu_spec.hpp"
#include "model/energy_model.hpp"
#include "model/features.hpp"
#include "nn/mlp.hpp"
#include "stats/linalg.hpp"

using namespace ecotune;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Options {
  std::string out;
  int repeats = 3;
  bool quick = false;
  std::vector<std::pair<std::string, std::string>> extra;
};

[[noreturn]] void usage(int code) {
  std::cout << "usage: perf_report [--out FILE] [--repeats N] [--quick]\n"
               "                   [--extra key=value]...\n"
               "  --out FILE       write the JSON report here (default: "
               "stdout)\n"
               "  --repeats N      repetitions per metric; the minimum is "
               "reported (default 3)\n"
               "  --quick          smaller workloads (CI smoke test)\n"
               "  --extra k=v      attach an externally measured metric "
               "(e.g. fig5_wall_seconds=12)\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      o.out = next("--out");
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      // Strict parse (repo convention since the PR-3 CLI hardening):
      // garbage or out-of-range values exit 2 instead of being coerced.
      const std::string v = next("--repeats");
      int repeats = 0;
      const auto res =
          std::from_chars(v.data(), v.data() + v.size(), repeats, 10);
      if (res.ec != std::errc() || res.ptr != v.data() + v.size() ||
          repeats < 1) {
        std::cerr << "error: --repeats expects an integer >= 1, got '" << v
                  << "'\n";
        std::exit(2);
      }
      o.repeats = repeats;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      o.quick = true;
    } else if (std::strcmp(argv[i], "--extra") == 0) {
      const std::string kv = next("--extra");
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        std::cerr << "error: --extra expects key=value, got '" << kv << "'\n";
        std::exit(2);
      }
      o.extra.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(0);
    } else {
      std::cerr << "error: unknown argument '" << argv[i] << "'\n";
      usage(2);
    }
  }
  return o;
}

double min_of(int repeats, double (*fn)(const Options&), const Options& o) {
  double best = fn(o);
  for (int r = 1; r < repeats; ++r) best = std::min(best, fn(o));
  return best;
}

double bench_train_epoch(const Options& o) {
  const std::size_t n = o.quick ? 2048 : 19152;
  const int epochs = o.quick ? 3 : 10;
  stats::Matrix x;
  std::vector<double> y;
  bench::synthetic_training_data(n, x, y);
  Rng rng(42);
  nn::Mlp net(nn::MlpConfig{}, rng);
  Rng shuffle(43);
  const auto t0 = Clock::now();
  for (int e = 0; e < epochs; ++e) net.train_epoch(x, y, shuffle);
  return seconds_since(t0) / epochs / static_cast<double>(n) * 1e9;
}

double bench_forward_scalar(const Options& o) {
  const int iters = o.quick ? 100000 : 1000000;
  Rng rng(7);
  const nn::Mlp net(nn::MlpConfig{}, rng);
  std::vector<double> x(9, 0.3);
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    x[8] = static_cast<double>(i % 17) * 0.1;
    acc += net.predict(x);
  }
  const double ns = seconds_since(t0) / iters * 1e9;
  if (acc == 0.12345) std::cerr << "";  // keep the accumulator alive
  return ns;
}

double bench_forward_batch(const Options& o) {
  const int iters = o.quick ? 1000 : 10000;
  Rng rng(7);
  const nn::Mlp net(nn::MlpConfig{}, rng);
  const stats::Matrix x = bench::synthetic_grid_batch();
  const std::size_t grid = x.rows();
  nn::Workspace ws;
  std::vector<double> out(grid);
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    net.forward_batch(x, std::span<double>(out), ws);
    acc += out[static_cast<std::size_t>(i) % grid];
  }
  const double ns =
      seconds_since(t0) / iters / static_cast<double>(grid) * 1e9;
  if (acc == 0.12345) std::cerr << "";
  return ns;
}

double bench_grid_recommend(const Options& o) {
  const int iters = o.quick ? 200 : 2000;
  const model::EnergyModel m = bench::untrained_ensemble_model(5);
  const hwsim::CpuSpec spec = hwsim::haswell_ep_spec();
  const std::map<std::string, double> rates = bench::synthetic_counter_rates();
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    acc += m.recommend(rates, spec).predicted_normalized_energy;
  }
  const double us = seconds_since(t0) / iters * 1e6;
  if (acc == 0.12345) std::cerr << "";
  return us;
}

double bench_model_predict(const Options& o) {
  const int iters = o.quick ? 50000 : 500000;
  const model::EnergyModel m = bench::untrained_ensemble_model(5);
  std::vector<double> f(9, 0.5);
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    f[8] = static_cast<double>(i % 13) * 0.2;
    acc += m.predict(f);
  }
  const double ns = seconds_since(t0) / iters * 1e9;
  if (acc == 0.12345) std::cerr << "";
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  Json results = Json::object();
  results["mlp_train_epoch_ns_per_sample"] =
      min_of(o.repeats, bench_train_epoch, o);
  results["mlp_forward_scalar_ns_per_point"] =
      min_of(o.repeats, bench_forward_scalar, o);
  results["mlp_forward_batch_ns_per_point"] =
      min_of(o.repeats, bench_forward_batch, o);
  results["grid_recommend_us_per_call"] =
      min_of(o.repeats, bench_grid_recommend, o);
  results["energy_model_predict_ns_per_call"] =
      min_of(o.repeats, bench_model_predict, o);
  for (const auto& [k, v] : o.extra) {
    double num = 0.0;
    if (ecotune::parse_double(v, num)) {
      results[k] = num;
    } else {
      results[k] = v;
    }
  }

  Json report = Json::object();
  report["schema"] = std::string("ecotune-perf-report/1");
  Json workloads = Json::object();
  workloads["mlp_train_epoch"] = std::string(
      o.quick ? "2048x9 samples, 3 epochs, 9-5-5-1 MLP, per-sample ADAM"
              : "19152x9 samples, 10 epochs, 9-5-5-1 MLP, per-sample ADAM "
                "(one fig5 candidate training)");
  workloads["mlp_forward"] =
      std::string("9-5-5-1 MLP, single point vs 252-row batch (14x18 grid)");
  workloads["grid_recommend"] = std::string(
      "EnergyModel (5-member ensemble) argmin over the 14x18 CF/UCF grid");
  report["workloads"] = std::move(workloads);
  report["estimator"] =
      std::string("min over " + std::to_string(o.repeats) + " repeats");
  report["results"] = std::move(results);

  const std::string text = report.dump(2) + "\n";
  if (o.out.empty()) {
    std::cout << text;
  } else {
    std::ofstream f(o.out);
    if (!f) {
      std::cerr << "error: cannot write " << o.out << '\n';
      return 2;
    }
    f << text;
    std::cout << "perf report written to " << o.out << '\n';
  }
  return 0;
}
