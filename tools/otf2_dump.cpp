// The stand-alone OTF2 post-processing tool (the paper's custom
// "OTF2-Parser"): dumps whole-run energy, per-phase-instance PAPI deltas
// and per-region statistics from an ecotune trace archive.
//
//   otf2_dump <trace-file> [--phase PHASE]
//   otf2_dump --record <benchmark> <trace-file>   # record a demo trace
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "instr/scorep_runtime.hpp"
#include "pmc/counter_sampler.hpp"
#include "trace/otf2.hpp"
#include "trace/post_processor.hpp"
#include "trace/trace_listener.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

namespace {

int record(const std::string& benchmark, const std::string& path) {
  const auto app =
      workload::BenchmarkSuite::by_name(benchmark).with_iterations(3);
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(7));
  node.set_jitter(0.002);

  trace::Otf2Archive archive;
  trace::TraceListener listener(
      archive,
      pmc::EventSet({hwsim::PmuEvent::kTOT_INS, hwsim::PmuEvent::kLD_INS,
                     hwsim::PmuEvent::kSR_INS, hwsim::PmuEvent::kBR_MSP}),
      pmc::CounterSampler(Rng(8), 0.005));
  instr::ExecutionContext ctx(node);
  instr::ScorepRuntime runtime(app,
                               instr::InstrumentationFilter::instrument_all());
  runtime.add_listener(&listener);
  runtime.execute(ctx);
  archive.save(path);
  std::cout << "recorded " << archive.records().size() << " records to "
            << path << '\n';
  return 0;
}

int dump(const std::string& path, const std::string& phase) {
  const auto archive = trace::Otf2Archive::load(path);
  const trace::Otf2PostProcessor post(archive, phase);

  std::cout << "trace      : " << path << '\n'
            << "records    : " << archive.records().size() << '\n'
            << "regions    : " << archive.region_names().size() << '\n'
            << "metrics    : " << archive.metric_names().size() << '\n'
            << "total time : " << post.total_time().value() << " s\n"
            << "total E    : " << post.total_energy().value() << " J\n\n";

  TextTable regions("per-region statistics");
  regions.header({"region", "count", "total time (s)"});
  for (const auto& rs : post.region_stats())
    regions.row({rs.name, std::to_string(rs.count),
                 TextTable::num(rs.total_time.value(), 4)});
  regions.print(std::cout);

  if (!post.phase_instances().empty()) {
    TextTable phases("phase instances (" + phase + ")");
    std::vector<std::string> header{"#", "duration (s)", "energy (J)"};
    for (const auto& [name, v] : post.phase_instances().front().counters)
      header.push_back(name);
    phases.header(header);
    for (const auto& inst : post.phase_instances()) {
      std::vector<std::string> row{std::to_string(inst.index),
                                   TextTable::num(inst.duration().value(), 4),
                                   TextTable::num(inst.energy.value(), 1)};
      for (const auto& [name, v] : inst.counters)
        row.push_back(TextTable::num(v, 0));
      phases.row(row);
    }
    phases.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string phase = "PHASE";
    if (argc >= 4 && std::string(argv[1]) == "--record")
      return record(argv[2], argv[3]);
    if (argc >= 2 && std::string(argv[1]).rfind("--", 0) != 0) {
      if (argc >= 4 && std::string(argv[2]) == "--phase") phase = argv[3];
      return dump(argv[1], phase);
    }
    std::cout << "usage:\n  otf2_dump <trace-file> [--phase PHASE]\n"
                 "  otf2_dump --record <benchmark> <trace-file>\n";
    return argc < 2 ? 2 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
