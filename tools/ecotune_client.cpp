// Command-line client for ecotune_serve: builds ecotune.rpc.v1 request
// frames, pipelines them down the daemon's AF_UNIX socket, and prints one
// response JSON document per line (in request-id order, so output is
// stable no matter how the daemon's workers interleave).
//
//   ecotune_client --socket /tmp/ecotune.sock --method ping
//   ecotune_client --socket S --method tune --tuner dta --benchmark Lulesh
//   ecotune_client --socket S --method predict
//       --params '{"counter_rates":{"instructions":2.1e9,"cycles":2.4e9}}'
//
// Repeating --benchmark (or passing --count N) fans out one request per
// benchmark (repetition); exits 1 when any response carries ok=false.
#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "serve/protocol.hpp"

using namespace ecotune;

namespace {

struct CliOptions {
  std::string socket_path;
  std::string tenant = "default";
  std::string method = "ping";
  std::vector<std::string> benchmarks;
  std::string tuner;
  std::string objective;
  std::string params_json;
  int count = 1;
  int timeout_ms = 0;  // 0 = daemon default
  bool help = false;
};

void print_usage() {
  std::cout <<
      "ecotune_client -- send requests to an ecotune_serve daemon\n"
      "\n"
      "usage: ecotune_client --socket <path> --method <name> [options]\n"
      "\n"
      "options:\n"
      "  --socket <path>      daemon AF_UNIX socket path (required)\n"
      "  --method <name>      rpc method: ping, methods, predict, tune,\n"
      "                       dta, evaluate, stats (default ping)\n"
      "  --tenant <name>      tenant id for accounting (default default)\n"
      "  --benchmark <name>   params.benchmark; repeat to fan out one\n"
      "                       request per benchmark over one connection\n"
      "  --tuner <name>       params.tuner (tune method)\n"
      "  --objective <name>   params.objective\n"
      "  --params <json>      extra params as a JSON object, merged in\n"
      "                       (explicit flags win)\n"
      "  --count <n>          repeat each request n times (default 1)\n"
      "  --timeout-ms <n>     per-request queue deadline (default: the\n"
      "                       daemon's --timeout-ms)\n"
      "  --help               this text\n"
      "\n"
      "Each response prints as one compact JSON line, ordered by request\n"
      "id; exit status is 1 when any response has ok=false.\n";
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) {
      return cli::next_arg_value(argc, argv, i, flag);
    };
    if (arg == "--socket") {
      const char* v = next("--socket");
      if (!v) return false;
      opts.socket_path = v;
    } else if (arg == "--method") {
      const char* v = next("--method");
      if (!v) return false;
      opts.method = v;
    } else if (arg == "--tenant") {
      const char* v = next("--tenant");
      if (!v) return false;
      opts.tenant = v;
    } else if (arg == "--benchmark") {
      const char* v = next("--benchmark");
      if (!v) return false;
      opts.benchmarks.emplace_back(v);
    } else if (arg == "--tuner") {
      const char* v = next("--tuner");
      if (!v) return false;
      opts.tuner = v;
    } else if (arg == "--objective") {
      const char* v = next("--objective");
      if (!v) return false;
      opts.objective = v;
    } else if (arg == "--params") {
      const char* v = next("--params");
      if (!v) return false;
      opts.params_json = v;
    } else if (arg == "--count") {
      const char* v = next("--count");
      if (!v || !cli::parse_strict_int("--count", v, 1, opts.count))
        return false;
    } else if (arg == "--timeout-ms") {
      const char* v = next("--timeout-ms");
      if (!v || !cli::parse_strict_int("--timeout-ms", v, 1, opts.timeout_ms))
        return false;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

/// Blocking connect to the daemon socket; returns -1 with a message on
/// stderr when the daemon is not there.
int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "error: socket path too long: " << path << '\n';
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "error: socket(): " << std::strerror(errno) << '\n';
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::cerr << "error: connect(" << path
              << "): " << std::strerror(errno) << '\n';
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::cerr << "error: send(): " << std::strerror(errno) << '\n';
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }
  if (opts.help) {
    print_usage();
    return 0;
  }
  if (opts.socket_path.empty()) {
    std::cerr << "error: --socket is required\n";
    print_usage();
    return 2;
  }

  Json base_params = Json::object();
  if (!opts.params_json.empty()) {
    try {
      base_params = Json::parse(opts.params_json);
      ensure(base_params.is_object(), "--params must be a JSON object");
    } catch (const std::exception& e) {
      std::cerr << "error: --params: " << e.what() << '\n';
      return 2;
    }
  }
  if (!opts.tuner.empty()) base_params["tuner"] = opts.tuner;
  if (!opts.objective.empty()) base_params["objective"] = opts.objective;

  // One request per (benchmark x repetition); no --benchmark means one
  // benchmark-less request per repetition (ping/stats/predict/methods).
  std::vector<Json> requests;
  const std::vector<std::string> targets =
      opts.benchmarks.empty() ? std::vector<std::string>{""}
                              : opts.benchmarks;
  std::int64_t id = 0;
  for (int rep = 0; rep < opts.count; ++rep) {
    for (const std::string& benchmark : targets) {
      Json params = base_params;
      if (!benchmark.empty()) params["benchmark"] = benchmark;
      Json frame = Json::object();
      frame["schema"] = std::string(serve::kRpcSchema);
      frame["id"] = id++;
      frame["tenant"] = opts.tenant;
      frame["method"] = opts.method;
      frame["params"] = std::move(params);
      if (opts.timeout_ms > 0)
        frame["timeout_ms"] = static_cast<std::int64_t>(opts.timeout_ms);
      requests.push_back(std::move(frame));
    }
  }

  const int fd = connect_to(opts.socket_path);
  if (fd < 0) return 1;

  // Pipeline every request, then collect every response; the daemon's
  // workers may answer out of order, so responses are reordered by id
  // before printing.
  std::string wire;
  for (const Json& request : requests)
    wire += serve::encode_frame(request);
  if (!send_all(fd, wire)) {
    ::close(fd);
    return 1;
  }

  std::vector<Json> responses(requests.size());
  std::vector<bool> seen(requests.size(), false);
  serve::FrameDecoder decoder;
  std::size_t received = 0;
  bool transport_error = false;
  char buf[4096];
  while (received < requests.size()) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) {
      std::cerr << "error: daemon closed the connection after " << received
                << '/' << requests.size() << " response(s)\n";
      transport_error = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      std::cerr << "error: recv(): " << std::strerror(errno) << '\n';
      transport_error = true;
      break;
    }
    try {
      decoder.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = decoder.next()) {
        const Json& resp = *frame;
        std::int64_t resp_id = -1;
        if (resp.is_object() && resp.contains("id") &&
            resp.at("id").is_number()) {
          resp_id = static_cast<std::int64_t>(resp.at("id").as_number());
        }
        if (resp_id >= 0 &&
            resp_id < static_cast<std::int64_t>(requests.size()) &&
            !seen[static_cast<std::size_t>(resp_id)]) {
          responses[static_cast<std::size_t>(resp_id)] = resp;
          seen[static_cast<std::size_t>(resp_id)] = true;
        } else {
          // id-less error frames (e.g. a framing reject) still print.
          std::cout << resp.dump(-1) << '\n';
        }
        ++received;
      }
    } catch (const Error& e) {
      std::cerr << "error: " << e.what() << '\n';
      transport_error = true;
      break;
    }
  }
  ::close(fd);

  bool any_failed = transport_error;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (!seen[i]) continue;
    std::cout << responses[i].dump(-1) << '\n';
    if (!(responses[i].contains("ok") && responses[i].at("ok").is_bool() &&
          responses[i].at("ok").as_bool())) {
      any_failed = true;
    }
  }
  return any_failed ? 1 : 0;
}
