// ecotune_lint — the repo's determinism lint (see tools/lint/linter.cpp
// for the rule set). Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

constexpr const char* kUsage = R"(usage: ecotune_lint [options] [file...]

Lints C++ sources against the ecotune determinism invariants. With no file
arguments, scans every *.cpp/*.hpp under <root>/{src,tools,bench,examples}.

options:
  --root <dir>   scan root / whitelist anchor (default: current directory)
  --list-rules   print the rule names and exit
  --help         this text

Waive a finding with a trailing comment on the flagged line:
  // ecotune-lint: allow(<rule>)  -- one-line rationale
)";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--list-rules") {
      for (const std::string& rule : ecotune::lint::rule_names())
        std::cout << rule << '\n';
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "error: --root expects a directory\n" << kUsage;
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
    files.emplace_back(arg);
  }

  try {
    if (files.empty()) {
      files = ecotune::lint::default_scan_set(root);
      if (files.empty()) {
        std::cerr << "error: no *.cpp/*.hpp sources found under '" << root
                  << "' (wrong --root?)\n";
        return 2;
      }
    }
    const auto diagnostics = ecotune::lint::lint_files(root, files);
    for (const auto& d : diagnostics)
      std::cout << ecotune::lint::format_diagnostic(d) << '\n';
    if (!diagnostics.empty()) {
      std::cerr << "ecotune_lint: " << diagnostics.size()
                << " finding(s) in " << files.size() << " file(s)\n";
    }
    return ecotune::lint::exit_code(diagnostics);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
