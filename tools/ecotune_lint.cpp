// ecotune_lint — the repo's analysis framework CLI (see tools/lint/ for
// the rule registry). Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "lint/linter.hpp"
#include "lint/sarif.hpp"

namespace {

constexpr const char* kUsage = R"(usage: ecotune_lint [options] [file...]

Lints C++ sources against the ecotune correctness invariants. With no file
arguments, scans every *.cpp/*.hpp under <root>/{src,tools,bench,examples}.

options:
  --root <dir>    scan root / whitelist anchor (default: current directory)
  --jobs <n>      lint n files concurrently (0 = hardware concurrency;
                  output is byte-identical for every value; default: 1)
  --format <fmt>  report format: text (default) or sarif (SARIF 2.1.0 on
                  stdout; findings still set exit code 1)
  --list-rules    print "<name>  <severity>  <summary>" per rule and exit
  --help          this text

Waive a finding with a trailing comment on the flagged line:
  // ecotune-lint: allow(<rule>)  -- one-line rationale
)";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  int jobs = 1;
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--list-rules") {
      for (const ecotune::lint::Rule& rule : ecotune::lint::rules())
        std::cout << rule.name << "  " << to_string(rule.severity) << "  "
                  << rule.summary << '\n';
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "error: --root expects a directory\n" << kUsage;
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::cerr << "error: --jobs expects an integer\n" << kUsage;
        return 2;
      }
      if (!ecotune::cli::parse_strict_int("--jobs", argv[++i], 0, jobs))
        return 2;
      continue;
    }
    if (arg == "--format") {
      if (i + 1 >= argc) {
        std::cerr << "error: --format expects text|sarif\n" << kUsage;
        return 2;
      }
      format = argv[++i];
      if (format != "text" && format != "sarif") {
        std::cerr << "error: unknown format '" << format
                  << "' (expected text|sarif)\n";
        return 2;
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
    files.emplace_back(arg);
  }

  try {
    if (files.empty()) {
      files = ecotune::lint::default_scan_set(root);
      if (files.empty()) {
        std::cerr << "error: no *.cpp/*.hpp sources found under '" << root
                  << "' (wrong --root?)\n";
        return 2;
      }
    }
    const auto diagnostics = ecotune::lint::lint_files(root, files, jobs);
    if (format == "sarif") {
      std::cout << ecotune::lint::sarif_report(diagnostics);
    } else {
      for (const auto& d : diagnostics)
        std::cout << ecotune::lint::format_diagnostic(d) << '\n';
    }
    if (!diagnostics.empty()) {
      std::cerr << "ecotune_lint: " << diagnostics.size()
                << " finding(s) in " << files.size() << " file(s)\n";
    }
    return ecotune::lint::exit_code(diagnostics);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
