// Tuning-as-a-service daemon: trains the energy model once, then serves
// concurrent tune/dta/predict/evaluate requests from many tenants over a
// length-prefixed JSON protocol on an AF_UNIX socket (schema
// ecotune.rpc.v1; see README "Tuning service" and tools/ecotune_client).
//
//   ecotune_serve --socket /tmp/ecotune.sock [--workers N]
//                 [--queue-limit N] [--timeout-ms N] [--debug-methods]
//                 [--seed 42] [--epochs 10] [--objective energy]
//                 [--jobs N] [--cache-dir DIR] [--cache-mode rw|ro|off]
//                 [--store-shards N]
//
// Prints one "ready on <socket>" line to stdout once the socket accepts
// connections (smoke tests and scripts wait for it), then blocks until
// SIGINT/SIGTERM, drains every in-flight request, and prints the final
// service-stats document.
#include <cstdint>
#include <iostream>
#include <string>

#include "api/session.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "ptf/objectives.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace ecotune;

namespace {

struct CliOptions {
  std::string socket_path;
  int workers = 0;  // 0 = hardware concurrency
  int queue_limit = 256;
  int timeout_ms = 30000;
  bool debug_methods = false;
  std::uint64_t seed = 42;
  int epochs = 10;
  std::string objective = "energy";
  int jobs = 0;  // training-phase concurrency (requests always run jobs=1)
  std::string cache_dir;
  std::string cache_mode;  // empty = rw when --cache-dir given, else off
  int store_shards = 0;    // 0 = store default
  bool help = false;
};

void print_usage() {
  std::cout <<
      "ecotune_serve -- multi-tenant tuning service daemon\n"
      "\n"
      "usage: ecotune_serve --socket <path> [options]\n"
      "\n"
      "options:\n"
      "  --socket <path>      AF_UNIX socket path to listen on (required;\n"
      "                       stale files from crashed daemons are\n"
      "                       replaced)\n"
      "  --workers <n>        concurrent request workers (default:\n"
      "                       hardware concurrency)\n"
      "  --queue-limit <n>    max queued requests before new ones are\n"
      "                       rejected with an 'overloaded' error\n"
      "                       (default 256)\n"
      "  --timeout-ms <n>     default queue-wait deadline for requests\n"
      "                       without timeout_ms (default 30000)\n"
      "  --debug-methods      enable the test-only 'sleep' method\n"
      "  --seed <n>           simulation seed (default 42)\n"
      "  --epochs <n>         energy-model training epochs (default 10)\n"
      "  --objective <name>   " +
          ptf::objective_names_joined() +
      "\n                       (default energy)\n"
      "  --jobs <n>           training-phase sweep workers (default:\n"
      "                       hardware concurrency); each request then\n"
      "                       runs single-threaded on its own node clone\n"
      "  --cache-dir <dir>    persistent measurement store shared by all\n"
      "                       tenants; a warm restart answers repeated\n"
      "                       requests from the store, byte-identical\n"
      "  --cache-mode <m>     rw|ro|off (default: rw with --cache-dir,\n"
      "                       off otherwise)\n"
      "  --store-shards <n>   in-memory store index shards (default "
      + std::to_string(store::MeasurementStore::kDefaultShardCount) +
      ";\n                       shard count never changes results)\n"
      "  --help               this text\n";
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) {
      return cli::next_arg_value(argc, argv, i, flag);
    };
    if (arg == "--socket") {
      const char* v = next("--socket");
      if (!v) return false;
      opts.socket_path = v;
    } else if (arg == "--workers") {
      const char* v = next("--workers");
      if (!v || !cli::parse_strict_int("--workers", v, 0, opts.workers))
        return false;
    } else if (arg == "--queue-limit") {
      const char* v = next("--queue-limit");
      if (!v ||
          !cli::parse_strict_int("--queue-limit", v, 1, opts.queue_limit))
        return false;
    } else if (arg == "--timeout-ms") {
      const char* v = next("--timeout-ms");
      if (!v || !cli::parse_strict_int("--timeout-ms", v, 1, opts.timeout_ms))
        return false;
    } else if (arg == "--debug-methods") {
      opts.debug_methods = true;
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v ||
          !cli::parse_strict_int("--seed", v, std::uint64_t{0}, opts.seed))
        return false;
    } else if (arg == "--epochs") {
      const char* v = next("--epochs");
      if (!v || !cli::parse_strict_int("--epochs", v, 1, opts.epochs))
        return false;
    } else if (arg == "--objective") {
      const char* v = next("--objective");
      if (!v) return false;
      opts.objective = v;
      try {
        (void)ptf::make_objective(opts.objective);
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what()
                  << " (registered: " << ptf::objective_names_joined()
                  << ")\n";
        return false;
      }
    } else if (arg == "--jobs") {
      const char* v = next("--jobs");
      if (!v || !cli::parse_strict_int("--jobs", v, 0, opts.jobs))
        return false;
    } else if (arg == "--cache-dir") {
      const char* v = next("--cache-dir");
      if (!v) return false;
      opts.cache_dir = v;
    } else if (arg == "--cache-mode") {
      const char* v = next("--cache-mode");
      if (!v) return false;
      opts.cache_mode = v;
    } else if (arg == "--store-shards") {
      const char* v = next("--store-shards");
      if (!v ||
          !cli::parse_strict_int("--store-shards", v, 1, opts.store_shards))
        return false;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }
  if (opts.help) {
    print_usage();
    return 0;
  }
  if (opts.socket_path.empty()) {
    std::cerr << "error: --socket is required\n";
    print_usage();
    return 2;
  }

  serve::ServiceConfig config;
  config.session = api::SessionConfig{}
                       .seed(opts.seed)
                       .jobs(opts.jobs)
                       .cache(opts.cache_dir, opts.cache_mode)
                       .objective(opts.objective)
                       .epochs(opts.epochs)
                       .store_shards(static_cast<std::size_t>(
                           opts.store_shards));
  config.workers = opts.workers;
  config.queue_limit = static_cast<std::size_t>(opts.queue_limit);
  config.default_timeout_ms = static_cast<double>(opts.timeout_ms);
  config.enable_debug_methods = opts.debug_methods;

  try {
    std::cout << "training model (seed " << opts.seed << ", "
              << opts.epochs << " epochs)...\n"
              << std::flush;
    serve::TuningService service(std::move(config));
    serve::Server server(service, opts.socket_path);
    server.bind_and_listen();
    std::cout << "ready on " << server.socket_path() << '\n' << std::flush;
    server.serve();
    // Final accounting: the same document the "stats" method serves, plus
    // the store's one-line summary.
    std::cout << service.stats().snapshot(service.queue_depth()).dump(2)
              << '\n'
              << service.session().store().summary() << '\n';
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
