#pragma once

// Rule registry of the ecotune analysis framework. Each rule carries the
// metadata the reporters need (stable name, severity, one-line summary,
// help URI) next to its check function, so adding a rule is one table row
// + one function — the CLI listing, the text reporter, and the SARIF
// emitter all derive from this table.

#include <string>
#include <vector>

#include "lint/source.hpp"

namespace ecotune::lint {

/// One finding: `path` is the file as reported (relative to the scan root
/// when possible), `line` is 1-based, `rule` is the stable rule name used
/// in inline `// ecotune-lint: allow(<rule>)` waivers.
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Report severity, mapped onto SARIF `level` values by to_string().
enum class Severity {
  kWarning,
  kError,
};

[[nodiscard]] std::string_view to_string(Severity severity);

/// One registered analysis. `check` appends findings for a single
/// translation unit; it must be pure (no global state) so files can be
/// linted concurrently.
struct Rule {
  std::string name;      ///< stable id, used by waivers and SARIF ruleId
  Severity severity;     ///< SARIF defaultConfiguration.level
  std::string summary;   ///< one line, shown in listings and SARIF
  std::string help_uri;  ///< where the policy is documented
  void (*check)(const Source& src, const std::string& path,
                std::vector<Diagnostic>& out);
};

/// Every rule the linter enforces, in stable registration order.
[[nodiscard]] const std::vector<Rule>& rules();

}  // namespace ecotune::lint
