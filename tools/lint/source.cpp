#include "lint/source.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ecotune::lint {
namespace {

/// Parses "ecotune-lint: allow(a, b)" markers out of one comment's text and
/// registers the named rules as waived for every line the comment touches.
void harvest_allows(Source& src, const std::string& comment, int first_line,
                    int last_line) {
  const std::string tag = "ecotune-lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string::npos) return;
  pos = comment.find("allow(", pos);
  if (pos == std::string::npos) return;
  const std::size_t open = pos + 6;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string names = comment.substr(open, close - open);
  std::set<std::string> rules;
  std::istringstream is(names);
  std::string name;
  while (std::getline(is, name, ',')) {
    name.erase(0, name.find_first_not_of(" \t"));
    name.erase(name.find_last_not_of(" \t") + 1);
    if (!name.empty()) rules.insert(name);
  }
  for (int line = first_line; line <= last_line; ++line)
    src.allows[line].insert(rules.begin(), rules.end());
}

}  // namespace

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

int line_of(const Source& src, std::size_t offset) {
  const auto it = std::upper_bound(src.line_starts.begin(),
                                   src.line_starts.end(), offset);
  return static_cast<int>(it - src.line_starts.begin());
}

Source preprocess(const std::string& text) {
  Source src;
  src.original = text;
  src.masked = text;
  src.line_starts.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') src.line_starts.push_back(i + 1);

  std::string& m = src.masked;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && (text[i + 1] == '/' || text[i + 1] == '*')) {
      const bool block = text[i + 1] == '*';
      const int first_line = line_of(src, i);
      std::size_t end = i + 2;
      if (block) {
        while (end + 1 < n && !(text[end] == '*' && text[end + 1] == '/'))
          ++end;
        end = std::min(n, end + 2);
      } else {
        while (end < n && text[end] != '\n') ++end;
      }
      harvest_allows(src, text.substr(i, end - i), first_line,
                     line_of(src, end == 0 ? 0 : end - 1));
      for (std::size_t k = i; k < end; ++k)
        if (m[k] != '\n') m[k] = ' ';
      i = end;
      continue;
    }
    if (c == '"') {
      // Raw string?  R"delim( ... )delim"  (with optional u8/u/U/L prefix,
      // i.e. the identifier hugging the quote ends in R).
      bool raw = i > 0 && text[i - 1] == 'R' &&
                 (i < 2 || !is_ident(text[i - 2]) ||
                  text[i - 2] == 'u' || text[i - 2] == 'U' ||
                  text[i - 2] == 'L' || text[i - 2] == '8');
      std::size_t end;
      if (raw) {
        std::size_t p = i + 1;
        while (p < n && text[p] != '(') ++p;
        std::string closer;
        closer += ')';
        closer.append(text, i + 1, p - i - 1);
        closer += '"';
        const std::size_t at = text.find(closer, p);
        end = at == std::string::npos ? n : at + closer.size();
      } else {
        end = i + 1;
        while (end < n && text[end] != '"') {
          if (text[end] == '\\' && end + 1 < n) ++end;
          ++end;
        }
        end = std::min(n, end + 1);
      }
      for (std::size_t k = i; k < end; ++k)
        if (m[k] != '\n') m[k] = ' ';
      i = end;
      continue;
    }
    if (c == '\'') {
      // Distinguish char literals from digit separators (1'000, 0xFF'AA):
      // a quote glued to an identifier char is a separator unless that
      // char is a literal prefix (u, U, L, or the 8 of u8).
      const char prev = i > 0 ? text[i - 1] : '\0';
      const bool separator =
          is_ident(prev) && prev != 'u' && prev != 'U' && prev != 'L' &&
          !(prev == '8' && i > 1 && text[i - 2] == 'u');
      if (separator) {
        ++i;
        continue;
      }
      std::size_t end = i + 1;
      while (end < n && text[end] != '\'') {
        if (text[end] == '\\' && end + 1 < n) ++end;
        ++end;
      }
      end = std::min(n, end + 1);
      for (std::size_t k = i; k < end; ++k)
        if (m[k] != '\n') m[k] = ' ';
      i = end;
      continue;
    }
    ++i;
  }
  return src;
}

std::vector<std::size_t> find_tokens(const std::string& s,
                                     const std::string& word) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= s.size() || !is_ident(s[after]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = after;
  }
  return out;
}

std::size_t prev_nonspace(const std::string& s, std::size_t pos) {
  while (pos > 0 && is_space(s[pos - 1])) --pos;
  return pos == 0 ? std::string::npos : pos - 1;
}

std::size_t next_nonspace(const std::string& s, std::size_t pos) {
  while (pos < s.size() && is_space(s[pos])) ++pos;
  return pos;
}

bool member_access(const std::string& s, std::size_t pos) {
  const std::size_t p = prev_nonspace(s, pos);
  if (p == std::string::npos) return false;
  if (s[p] == '.') return true;
  return s[p] == '>' && p > 0 && s[p - 1] == '-';
}

bool followed_by_call(const std::string& s, std::size_t token_end) {
  const std::size_t p = next_nonspace(s, token_end);
  return p < s.size() && s[p] == '(';
}

bool looks_like_declaration(const std::string& s, std::size_t pos) {
  const std::size_t p = prev_nonspace(s, pos);
  if (p == std::string::npos || !is_ident(s[p])) return false;
  std::size_t b = p;
  while (b > 0 && is_ident(s[b - 1])) --b;
  return s.substr(b, p - b + 1) != "return";
}

std::string call_literal_text(const Source& src, std::size_t token_end) {
  const std::string& m = src.masked;
  std::size_t p = next_nonspace(m, token_end);
  if (p >= m.size() || m[p] != '(') return {};
  int depth = 0;
  std::string out;
  for (; p < m.size(); ++p) {
    if (m[p] == '(') ++depth;
    if (m[p] == ')' && --depth == 0) break;
    // A masked byte that differs from the original is literal content.
    if (m[p] == ' ' && src.original[p] != ' ') out += src.original[p];
  }
  return out;
}

bool has_float_conversion(const std::string& fmt) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < fmt.size() && fmt[j] == '%') {
      i = j;
      continue;
    }
    while (j < fmt.size() &&
           (std::string("-+ #0'*.0123456789hlLqjzt").find(fmt[j]) !=
            std::string::npos))
      ++j;
    if (j < fmt.size() && std::string("aAeEfFgG").find(fmt[j]) !=
                              std::string::npos)
      return true;
    i = j;
  }
  return false;
}

std::vector<std::string> idents_on(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (is_ident(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      std::size_t j = i;
      while (j < text.size() && is_ident(text[j])) ++j;
      out.push_back(text.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace ecotune::lint
