#pragma once

// The module layering DAG of src/, mirrored from the DEPS lists in
// src/*/CMakeLists.txt. The include-layering rule enforces it on
// #include edges, so a header dependency that the linker would reject
// (or silently tolerate through transitive include paths) fails lint
// instead of rotting the layer diagram.
//
// Keep this table in sync with the DEPS arguments of ecotune_add_module
// in src/*/CMakeLists.txt — the include_graph test cross-checks shape
// invariants (acyclic, common at the bottom), and a mismatch shows up as
// either a lint false positive or a link error.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ecotune::lint {

/// module -> the modules it may include from (its direct CMake DEPS).
/// Every module may also include itself; that edge is implicit.
[[nodiscard]] const std::map<std::string, std::set<std::string>>&
module_dag();

/// Module names in deterministic (lexicographic) order.
[[nodiscard]] std::vector<std::string> module_names();

/// The src/ module owning `path` ("src/hwsim/node.cpp" -> "hwsim"), or ""
/// when the path is not of the form src/<known-module>/...
[[nodiscard]] std::string module_of(const std::string& path);

/// True when code in module `from` may include a header of module `to`.
[[nodiscard]] bool edge_allowed(const std::string& from,
                                const std::string& to);

}  // namespace ecotune::lint
