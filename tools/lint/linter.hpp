#pragma once

// Top layer of the ecotune analysis framework: scan-set discovery, the
// (optionally parallel) file driver, and the text reporter. The layers
// below are lint/source.hpp (lexer), lint/rules.hpp (rule registry),
// lint/include_graph.hpp (module DAG), and lint/sarif.hpp (SARIF 2.1.0).

#include <filesystem>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace ecotune::lint {

/// Stable names of every rule the linter enforces, in report order.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Lints one translation unit against every registered rule. `path` must
/// be the scan-root-relative path with forward slashes — the per-rule path
/// whitelists (common/ wrappers, common/rng seed plumbing,
/// common/parallel, the src/ module DAG) key off it.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& text);

/// The default scan set under `root`: every *.cpp / *.hpp below src/,
/// tools/, bench/, and examples/, sorted so output order is deterministic.
[[nodiscard]] std::vector<std::filesystem::path> default_scan_set(
    const std::filesystem::path& root);

/// Reads and lints `files` (paths are reported relative to `root` when they
/// are inside it). `jobs` files are linted concurrently on the common/
/// ThreadPool (<= 0 means hardware concurrency); per-file results are
/// reduced in file order, so the diagnostics — and therefore the CLI
/// output — are byte-identical for every jobs value. Throws
/// std::runtime_error on unreadable files.
[[nodiscard]] std::vector<Diagnostic> lint_files(
    const std::filesystem::path& root,
    const std::vector<std::filesystem::path>& files, int jobs = 1);

/// "path:line: error: [rule] message" — the exact line the fixtures assert.
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

/// Exit-code contract of the CLI: 0 clean, 1 findings (2, usage/IO error,
/// is produced by the CLI itself).
[[nodiscard]] int exit_code(const std::vector<Diagnostic>& diagnostics);

}  // namespace ecotune::lint
