#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace ecotune::lint {

/// One finding: `path` is the file as reported (relative to the scan root
/// when possible), `line` is 1-based, `rule` is the stable rule name used
/// in inline `// ecotune-lint: allow(<rule>)` waivers.
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Stable names of every rule the linter enforces, in report order.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Lints one translation unit. `path` must be the scan-root-relative path
/// with forward slashes — the per-rule path whitelists (common/ wrappers,
/// common/rng seed plumbing, common/parallel) key off it.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& text);

/// The default scan set under `root`: every *.cpp / *.hpp below src/,
/// tools/, bench/, and examples/, sorted so output order is deterministic.
[[nodiscard]] std::vector<std::filesystem::path> default_scan_set(
    const std::filesystem::path& root);

/// Reads and lints `files` (paths are reported relative to `root` when they
/// are inside it). Throws std::runtime_error on unreadable files.
[[nodiscard]] std::vector<Diagnostic> lint_files(
    const std::filesystem::path& root,
    const std::vector<std::filesystem::path>& files);

/// "path:line: error: [rule] message" — the exact line the fixtures assert.
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

/// Exit-code contract of the CLI: 0 clean, 1 findings (2, usage/IO error,
/// is produced by the CLI itself).
[[nodiscard]] int exit_code(const std::vector<Diagnostic>& diagnostics);

}  // namespace ecotune::lint
