// The seven ecotune analyses — repo-specific invariants no generic tool
// enforces:
//
//   locale-number-io     C locale-dependent number parsing/formatting
//                        outside the common/ wrappers.
//   nondeterministic-seed
//                        entropy/clock seeding outside common/rng.
//   unordered-iteration  iterating an unordered container in a file that
//                        writes to an output sink (hash order would leak
//                        into byte-identical stdout).
//   raw-thread           raw std::thread / detached threads outside
//                        common/parallel (the pool owns the determinism
//                        contract: task-keyed RNG, ordered reductions).
//   lock-discipline      manual .lock()/.unlock()/.try_lock() calls or
//                        mutex members without a GUARDED_BY guardee
//                        outside src/common/ (the annotated wrapper layer)
//                        — everything else must hold locks through the
//                        Clang-provable MutexLock.
//   include-layering     #include edges that cross the src/ module DAG
//                        declared by the DEPS lists in src/*/CMakeLists.txt.
//   raw-intrinsics       x86 vector intrinsics (_mm* calls, __m128/__m256/
//                        __m512 types, *intrin.h headers) outside
//                        src/common/simd.hpp — the one file that owns the
//                        width wrappers, the dispatch levels, and the
//                        determinism contract they promise.
//
// Waiver: a trailing comment on the flagged line of the form
//   // ecotune-lint: allow(<rule>[, <rule>...])  -- reason
// suppresses the named rules for that line only.

#include "lint/rules.hpp"

#include <set>

#include "lint/include_graph.hpp"

namespace ecotune::lint {
namespace {

void emit(std::vector<Diagnostic>& out, const Source& src, const
          std::string& path, std::size_t offset, const std::string& rule,
          std::string message) {
  const int line = line_of(src, offset);
  const auto it = src.allows.find(line);
  if (it != src.allows.end() && it->second.contains(rule)) return;
  out.push_back(Diagnostic{path, line, rule, std::move(message)});
}

// --------------------------------------------------------------------------
// locale-number-io: locale-dependent number I/O outside common/ wrappers.
// --------------------------------------------------------------------------
void check_locale_number_io(const Source& src, const std::string& path,
                            std::vector<Diagnostic>& out) {
  if (path.starts_with("src/common/")) return;
  static const char* const kParseFns[] = {
      "atoi",    "atof",    "atol",    "atoll",   "strtol",  "strtoll",
      "strtoul", "strtoull", "strtof", "strtod",  "strtold", "stoi",
      "stol",    "stoll",   "stoul",   "stoull",  "stof",    "stod",
      "stold",   "scanf",   "sscanf",  "fscanf",  "vsscanf"};
  for (const char* fn : kParseFns) {
    for (const std::size_t pos : find_tokens(src.masked, fn)) {
      if (member_access(src.masked, pos)) continue;
      if (looks_like_declaration(src.masked, pos)) continue;
      if (!followed_by_call(src.masked, pos + std::string(fn).size()))
        continue;
      emit(out, src, path, pos, "locale-number-io",
           std::string("'") + fn +
               "' parses numbers through the process locale; use the "
               "locale-independent wrappers (common/cli parse_strict_int, "
               "common/numbers parse_double, common/json, common/csv)");
    }
  }
  static const char* const kPrintfFns[] = {
      "printf",  "fprintf",  "sprintf", "snprintf",
      "vprintf", "vfprintf", "vsprintf", "vsnprintf"};
  for (const char* fn : kPrintfFns) {
    for (const std::size_t pos : find_tokens(src.masked, fn)) {
      if (member_access(src.masked, pos)) continue;
      const std::string fmt =
          call_literal_text(src, pos + std::string(fn).size());
      if (!has_float_conversion(fmt)) continue;
      emit(out, src, path, pos, "locale-number-io",
           std::string("'") + fn +
               "' with a floating-point conversion formats through the "
               "process locale; use common/numbers format_double or "
               "common/csv row_numeric");
    }
  }
}

// --------------------------------------------------------------------------
// nondeterministic-seed: entropy/clock seeding outside common/rng.
// --------------------------------------------------------------------------
void check_nondeterministic_seed(const Source& src, const std::string& path,
                                 std::vector<Diagnostic>& out) {
  if (path.starts_with("src/common/rng.")) return;
  for (const std::size_t pos : find_tokens(src.masked, "random_device"))
    emit(out, src, path, pos, "nondeterministic-seed",
         "std::random_device draws fresh entropy per run; derive streams "
         "from a seeded common/rng Rng (Rng::fork) instead");
  static const char* const kClockFns[] = {"rand", "srand", "time",
                                          "gettimeofday", "clock"};
  for (const char* fn : kClockFns) {
    for (const std::size_t pos : find_tokens(src.masked, fn)) {
      if (member_access(src.masked, pos)) continue;
      if (looks_like_declaration(src.masked, pos)) continue;
      if (!followed_by_call(src.masked, pos + std::string(fn).size()))
        continue;
      emit(out, src, path, pos, "nondeterministic-seed",
           std::string("'") + fn +
               "(' injects wall-clock/libc entropy into the run; "
               "determinism-relevant randomness must flow from a seeded "
               "common/rng Rng");
    }
  }
}

// --------------------------------------------------------------------------
// unordered-iteration: unordered-container walks in output-writing files.
// --------------------------------------------------------------------------
const std::set<std::string>& noise_idents() {
  static const std::set<std::string> kNoise = {
      "std",      "unordered_map", "unordered_set", "auto",     "const",
      "constexpr", "static",       "new",           "delete",   "using",
      "typedef",  "struct",        "class",         "public",   "private",
      "if",       "for",           "while",         "return",   "void",
      "int",      "bool",          "char",          "double",   "float",
      "unsigned", "long",          "size_t",        "uint64_t", "int64_t",
      "string",   "string_view",   "vector",        "pair",     "include",
      "pragma",   "once",          "namespace",     "template", "typename",
      "inline",   "mutable",       "this"};
  return kNoise;
}

bool writes_output_sink(const Source& src) {
  const std::string& m = src.masked;
  if (!find_tokens(m, "cout").empty()) return true;
  for (const char* fn : {"printf", "puts"}) {
    for (const std::size_t pos : find_tokens(m, fn)) {
      if (member_access(m, pos)) continue;
      if (followed_by_call(m, pos + std::string(fn).size())) return true;
    }
  }
  for (const char* fn : {"fprintf", "fputs", "fwrite"}) {
    for (const std::size_t pos : find_tokens(m, fn)) {
      if (member_access(m, pos)) continue;
      // Stream-directed: only stdout counts as a determinism sink.
      const std::size_t stop = std::min(m.size(), pos + 200);
      if (m.find("stdout", pos) < stop) return true;
    }
  }
  return false;
}

void check_unordered_iteration(const Source& src, const std::string& path,
                               std::vector<Diagnostic>& out) {
  const std::string& m = src.masked;
  if (m.find("unordered_map") == std::string::npos &&
      m.find("unordered_set") == std::string::npos)
    return;
  if (!writes_output_sink(src)) return;

  // Candidate container names: every non-noise identifier appearing on a
  // line that mentions an unordered container type.
  std::set<std::string> candidates;
  std::size_t start = 0;
  for (std::size_t li = 0; li < src.line_starts.size(); ++li) {
    start = src.line_starts[li];
    const std::size_t end = li + 1 < src.line_starts.size()
                                ? src.line_starts[li + 1]
                                : m.size();
    const std::string line = m.substr(start, end - start);
    if (line.find("unordered_map") == std::string::npos &&
        line.find("unordered_set") == std::string::npos)
      continue;
    for (const std::string& id : idents_on(line))
      if (!noise_idents().contains(id)) candidates.insert(id);
  }

  // Range-for over a candidate (or over any expression spelling an
  // unordered container type directly).
  for (const std::size_t pos : find_tokens(m, "for")) {
    std::size_t p = next_nonspace(m, pos + 3);
    if (p >= m.size() || m[p] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos, close = std::string::npos;
    for (std::size_t k = p; k < m.size(); ++k) {
      if (m[k] == '(') ++depth;
      if (m[k] == ')' && --depth == 0) {
        close = k;
        break;
      }
      if (m[k] == ':' && depth == 1) {
        if (k + 1 < m.size() && m[k + 1] == ':') {
          ++k;
          continue;
        }
        if (k > 0 && m[k - 1] == ':') continue;
        if (colon == std::string::npos) colon = k;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = m.substr(colon + 1, close - colon - 1);
    const std::vector<std::string> ids = idents_on(range);
    const bool direct = range.find("unordered_") != std::string::npos;
    const bool named =
        !ids.empty() && candidates.contains(ids.front());
    if (direct || named) {
      emit(out, src, path, pos, "unordered-iteration",
           "range-for over unordered container" +
               (named ? " '" + ids.front() + "'" : std::string()) +
               " in a file that writes to an output sink; hash order is "
               "not deterministic — use std::map/std::set or sort first");
    }
  }

  // Explicit iterator walks: candidate.begin() / candidate.cbegin().
  for (const char* fn : {"begin", "cbegin"}) {
    for (const std::size_t pos : find_tokens(m, fn)) {
      if (!member_access(m, pos)) continue;
      if (!followed_by_call(m, pos + std::string(fn).size())) continue;
      std::size_t p = prev_nonspace(m, pos);  // '.' or '>'
      if (p == std::string::npos) continue;
      if (m[p] == '>') --p;  // '->'
      if (p == std::string::npos || p == 0) continue;
      std::size_t e = prev_nonspace(m, p);
      if (e == std::string::npos || !is_ident(m[e])) continue;
      std::size_t b = e;
      while (b > 0 && is_ident(m[b - 1])) --b;
      const std::string name = m.substr(b, e - b + 1);
      if (!candidates.contains(name)) continue;
      emit(out, src, path, pos, "unordered-iteration",
           "iterator walk over unordered container '" + name +
               "' in a file that writes to an output sink; hash order is "
               "not deterministic — use std::map/std::set or sort first");
    }
  }
}

// --------------------------------------------------------------------------
// raw-thread: raw std::thread / detached threads outside common/parallel.
// --------------------------------------------------------------------------
void check_raw_thread(const Source& src, const std::string& path,
                      std::vector<Diagnostic>& out) {
  if (path.starts_with("src/common/parallel.")) return;
  const std::string& m = src.masked;
  for (const char* cls : {"thread", "jthread"}) {
    for (const std::size_t pos : find_tokens(m, cls)) {
      // Only the std:: spellings; a member named `thread` is fine.
      if (pos < 2 || m[pos - 1] != ':' || m[pos - 2] != ':') continue;
      std::size_t b = pos - 2;
      std::size_t e = prev_nonspace(m, b);
      if (e == std::string::npos) continue;
      std::size_t s = e;
      while (s > 0 && is_ident(m[s - 1])) --s;
      if (m.substr(s, e - s + 1) != "std") continue;
      emit(out, src, path, pos, "raw-thread",
           std::string("std::") + cls +
               " outside common/parallel; route concurrency through "
               "ThreadPool/parallel_for_each so task-keyed RNG and "
               "ordered reductions keep output jobs-invariant");
    }
  }
  for (const std::size_t pos : find_tokens(m, "detach")) {
    if (!member_access(m, pos)) continue;
    if (!followed_by_call(m, pos + 6)) continue;
    emit(out, src, path, pos, "raw-thread",
         "detached threads outlive the scope that can join them; "
         "common/parallel owns every worker's lifetime");
  }
}

// --------------------------------------------------------------------------
// lock-discipline: manual lock calls / unguarded mutexes outside common/.
// --------------------------------------------------------------------------

/// The names every ECOTUNE_GUARDED_BY / ECOTUNE_PT_GUARDED_BY annotation in
/// the file declares as a guard (paren contents, whitespace stripped).
std::set<std::string> guarded_by_targets(const Source& src) {
  std::set<std::string> guards;
  const std::string& m = src.masked;
  for (const char* macro : {"ECOTUNE_GUARDED_BY", "ECOTUNE_PT_GUARDED_BY"}) {
    for (const std::size_t pos : find_tokens(m, macro)) {
      std::size_t p = next_nonspace(m, pos + std::string(macro).size());
      if (p >= m.size() || m[p] != '(') continue;
      int depth = 0;
      std::string arg;
      for (; p < m.size(); ++p) {
        if (m[p] == '(' && ++depth == 1) continue;
        if (m[p] == ')' && --depth == 0) break;
        if (!is_space(m[p])) arg += m[p];
      }
      if (!arg.empty()) guards.insert(arg);
    }
  }
  return guards;
}

void check_lock_discipline(const Source& src, const std::string& path,
                           std::vector<Diagnostic>& out) {
  // src/common/ is the annotated wrapper layer itself: Mutex forwards the
  // raw calls, MutexLock relocks around cv waits, and the pool hands its
  // lock across the batch drain. Everything above it must go through them.
  if (path.starts_with("src/common/")) return;
  const std::string& m = src.masked;

  // Manual lock management: obj.lock() / obj->unlock() / obj.try_lock().
  // Scoped RAII (MutexLock, lock_guard) is invisible to this check — only
  // the manual call pairs the Clang analysis cannot pair up are flagged.
  for (const char* fn : {"lock", "unlock", "try_lock"}) {
    for (const std::size_t pos : find_tokens(m, fn)) {
      if (!member_access(m, pos)) continue;
      if (!followed_by_call(m, pos + std::string(fn).size())) continue;
      emit(out, src, path, pos, "lock-discipline",
           std::string("manual '.") + fn +
               "()' call; hold locks through a scoped MutexLock "
               "(common/mutex) so the Clang -Wthread-safety lane can pair "
               "acquire with release (manual pairs leak on exceptions and "
               "early returns)");
    }
  }

  // Mutex members that guard nothing: a mutex declaration in a file with
  // no ECOTUNE_GUARDED_BY naming it means the compiler cannot prove any
  // access discipline — the mutex is decorative.
  static const char* const kMutexTypes[] = {
      "mutex", "Mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex", "shared_timed_mutex"};
  const std::set<std::string> guards = guarded_by_targets(src);
  for (const char* type : kMutexTypes) {
    for (const std::size_t pos : find_tokens(m, type)) {
      // A declaration site: `<type> name ;|=|{` — template arguments
      // (`lock_guard<std::mutex>`), references, and parameters all fail
      // the shape test and are skipped.
      std::size_t p = next_nonspace(m, pos + std::string(type).size());
      if (p >= m.size() || !is_ident(m[p]) ||
          std::isdigit(static_cast<unsigned char>(m[p])) != 0)
        continue;
      std::size_t e = p;
      while (e < m.size() && is_ident(m[e])) ++e;
      const std::string name = m.substr(p, e - p);
      const std::size_t after = next_nonspace(m, e);
      if (after >= m.size() ||
          (m[after] != ';' && m[after] != '=' && m[after] != '{'))
        continue;
      if (guards.contains(name)) continue;
      emit(out, src, path, pos, "lock-discipline",
           "mutex '" + name +
               "' has no ECOTUNE_GUARDED_BY(" + name +
               ") guardee in this file; annotate the data it protects "
               "(common/thread_annotations) so the Clang lane can prove "
               "the lock discipline, and use ecotune::Mutex, not "
               "std::mutex, as the capability type");
    }
  }
}

// --------------------------------------------------------------------------
// include-layering: #include edges must follow the src/ module DAG.
// --------------------------------------------------------------------------
void check_include_layering(const Source& src, const std::string& path,
                            std::vector<Diagnostic>& out) {
  const std::string from = module_of(path);
  if (from.empty()) return;
  // Include paths live inside string literals, which the mask blanks —
  // directives are parsed from the ORIGINAL text, line by line.
  for (std::size_t li = 0; li < src.line_starts.size(); ++li) {
    const std::size_t start = src.line_starts[li];
    const std::size_t stop = li + 1 < src.line_starts.size()
                                 ? src.line_starts[li + 1]
                                 : src.original.size();
    const std::string line = src.original.substr(start, stop - start);
    std::size_t p = next_nonspace(line, 0);
    if (p >= line.size() || line[p] != '#') continue;
    p = next_nonspace(line, p + 1);
    if (line.compare(p, 7, "include") != 0) continue;
    p = next_nonspace(line, p + 7);
    if (p >= line.size() || line[p] != '"') continue;  // <...> is external
    const std::size_t close = line.find('"', p + 1);
    if (close == std::string::npos) continue;
    const std::string target = line.substr(p + 1, close - p - 1);
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string to = target.substr(0, slash);
    if (!module_dag().contains(to)) continue;  // not a src/ module header
    if (edge_allowed(from, to)) continue;
    emit(out, src, path, start, "include-layering",
         "#include \"" + target + "\" crosses the module DAG: '" + from +
             "' does not declare '" + to +
             "' in its DEPS (src/" + from +
             "/CMakeLists.txt); declare the dependency there first or "
             "invert the edge");
  }
}

// --------------------------------------------------------------------------
// raw-intrinsics: x86 vector intrinsics outside src/common/simd.hpp.
// --------------------------------------------------------------------------
void check_raw_intrinsics(const Source& src, const std::string& path,
                          std::vector<Diagnostic>& out) {
  // simd.hpp is the sanctioned intrinsics site: it owns the V4/V2x2
  // wrappers, the target attributes, and the rounding-order contract the
  // kernel tests pin. Everywhere else must speak through those wrappers
  // so a new instruction set is one file, not a grep.
  if (path == "src/common/simd.hpp") return;

  // Intrinsic headers: directives are parsed from the ORIGINAL text (the
  // mask blanks quoted paths, and <...> paths are not worth special-casing
  // when the line scan sees both spellings the same way).
  static const std::set<std::string> kHeaders = {
      "immintrin.h", "emmintrin.h", "xmmintrin.h", "pmmintrin.h",
      "smmintrin.h", "tmmintrin.h", "nmmintrin.h", "wmmintrin.h",
      "x86intrin.h"};
  for (std::size_t li = 0; li < src.line_starts.size(); ++li) {
    const std::size_t start = src.line_starts[li];
    const std::size_t stop = li + 1 < src.line_starts.size()
                                 ? src.line_starts[li + 1]
                                 : src.original.size();
    const std::string line = src.original.substr(start, stop - start);
    std::size_t p = next_nonspace(line, 0);
    if (p >= line.size() || line[p] != '#') continue;
    p = next_nonspace(line, p + 1);
    if (line.compare(p, 7, "include") != 0) continue;
    p = next_nonspace(line, p + 7);
    if (p >= line.size() || (line[p] != '<' && line[p] != '"')) continue;
    const char closer = line[p] == '<' ? '>' : '"';
    const std::size_t close = line.find(closer, p + 1);
    if (close == std::string::npos) continue;
    std::string target = line.substr(p + 1, close - p - 1);
    const std::size_t slash = target.rfind('/');
    if (slash != std::string::npos) target = target.substr(slash + 1);
    if (!kHeaders.contains(target)) continue;
    emit(out, src, path, start, "raw-intrinsics",
         "#include <" + target +
             "> pulls raw x86 intrinsics into this file; include "
             "common/simd.hpp and extend its width wrappers instead — "
             "src/common/simd.hpp is the only sanctioned intrinsics site");
  }

  // Intrinsic tokens: _mm_* / _mm256_* / _mm512_* calls and the __m128 /
  // __m256 / __m512 register types (any suffix: d, i, h, ...).
  const std::string& m = src.masked;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!is_ident(m[i]) || (i > 0 && is_ident(m[i - 1]))) continue;
    std::size_t e = i;
    while (e < m.size() && is_ident(m[e])) ++e;
    const std::string token = m.substr(i, e - i);
    const bool vec_type = token.starts_with("__m128") ||
                          token.starts_with("__m256") ||
                          token.starts_with("__m512");
    const bool mm_call =
        token.starts_with("_mm") && token.size() > 3 &&
        (token[3] == '_' ||
         std::isdigit(static_cast<unsigned char>(token[3])) != 0);
    if (vec_type || mm_call)
      emit(out, src, path, i, "raw-intrinsics",
           "'" + token +
               "' is a raw x86 intrinsic outside src/common/simd.hpp; use "
               "the V4/V2x2 wrappers (or add the missing operation there) "
               "so dispatch, the scalar fallback, and the determinism "
               "contract stay in one audited file");
    i = e;
  }
}

}  // namespace

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"locale-number-io", Severity::kError,
       "locale-dependent number parsing/formatting outside the common/ "
       "wrappers",
       "README.md#locale-number-io", &check_locale_number_io},
      {"nondeterministic-seed", Severity::kError,
       "entropy or clock seeding outside common/rng",
       "README.md#nondeterministic-seed", &check_nondeterministic_seed},
      {"unordered-iteration", Severity::kError,
       "unordered-container iteration in a file that writes to an output "
       "sink",
       "README.md#unordered-iteration", &check_unordered_iteration},
      {"raw-thread", Severity::kError,
       "raw std::thread or detached threads outside common/parallel",
       "README.md#raw-thread", &check_raw_thread},
      {"lock-discipline", Severity::kError,
       "manual lock calls or mutex members without a GUARDED_BY guardee "
       "outside src/common/",
       "README.md#lock-discipline", &check_lock_discipline},
      {"include-layering", Severity::kError,
       "#include edges that cross the src/ module DAG declared in CMake",
       "README.md#include-layering", &check_include_layering},
      {"raw-intrinsics", Severity::kError,
       "x86 vector intrinsics (_mm*, __m128/__m256/__m512, *intrin.h) "
       "outside src/common/simd.hpp",
       "README.md#raw-intrinsics", &check_raw_intrinsics},
  };
  return kRules;
}

}  // namespace ecotune::lint
