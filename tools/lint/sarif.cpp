#include "lint/sarif.hpp"

#include <cstddef>
#include <sstream>

namespace ecotune::lint {
namespace {

/// JSON string escaping per RFC 8259: the two mandatory escapes plus
/// control characters as \u00XX. Everything the linter emits is ASCII.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quoted(std::string_view text) {
  return '"' + json_escape(text) + '"';
}

}  // namespace

std::string sarif_report(const std::vector<Diagnostic>& diagnostics) {
  const std::vector<Rule>& all = rules();
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"ecotune_lint\",\n"
     << "          \"informationUri\": \"README.md#correctness-tooling\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Rule& rule = all[i];
    os << "            {\n"
       << "              \"id\": " << quoted(rule.name) << ",\n"
       << "              \"shortDescription\": { \"text\": "
       << quoted(rule.summary) << " },\n"
       << "              \"helpUri\": " << quoted(rule.help_uri) << ",\n"
       << "              \"defaultConfiguration\": { \"level\": "
       << quoted(to_string(rule.severity)) << " }\n"
       << "            }" << (i + 1 < all.size() ? "," : "") << '\n';
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    std::size_t rule_index = 0;
    std::string_view level = "error";
    for (std::size_t r = 0; r < all.size(); ++r) {
      if (all[r].name == d.rule) {
        rule_index = r;
        level = to_string(all[r].severity);
        break;
      }
    }
    os << "        {\n"
       << "          \"ruleId\": " << quoted(d.rule) << ",\n"
       << "          \"ruleIndex\": " << rule_index << ",\n"
       << "          \"level\": " << quoted(level) << ",\n"
       << "          \"message\": { \"text\": " << quoted(d.message)
       << " },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": "
       << quoted(d.path) << " },\n"
       << "                \"region\": { \"startLine\": " << d.line
       << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < diagnostics.size() ? "," : "") << '\n';
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace ecotune::lint
