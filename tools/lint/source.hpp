#pragma once

// Lexical layer of the ecotune analysis framework: offset-preserving
// comment/literal masking plus the token helpers every rule builds on.
// The scanner is lexical, not a full parser — that keeps it fast,
// dependency-free, and immune to banned tokens appearing in strings or
// comments (including the rule tables themselves).

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ecotune::lint {

/// The source after lexing: `masked` has every comment and string/char
/// literal replaced by spaces, byte-for-byte the same length as the
/// original so offsets agree between the two. Rules match tokens against
/// `masked`; anything that needs literal content (include paths, printf
/// format strings) reads the same offsets out of `original`.
struct Source {
  std::string original;
  std::string masked;
  std::vector<std::size_t> line_starts;  ///< offset of each line's first byte
  std::map<int, std::set<std::string>> allows;  ///< line -> waived rules
};

/// One-pass lexer: comments and literals become runs of spaces; newlines
/// survive so line numbers stay exact. `// ecotune-lint: allow(rule)`
/// waiver comments are harvested into `allows` before being masked.
[[nodiscard]] Source preprocess(const std::string& text);

/// 1-based line number of the byte at `offset`.
[[nodiscard]] int line_of(const Source& src, std::size_t offset);

[[nodiscard]] bool is_ident(char c);
[[nodiscard]] bool is_space(char c);

/// Occurrences of `word` as a whole identifier token.
[[nodiscard]] std::vector<std::size_t> find_tokens(const std::string& s,
                                                   const std::string& word);

/// Offset of the last non-space byte before `pos`, or npos at the start.
[[nodiscard]] std::size_t prev_nonspace(const std::string& s,
                                        std::size_t pos);
/// Offset of the first non-space byte at or after `pos` (size() at end).
[[nodiscard]] std::size_t next_nonspace(const std::string& s,
                                        std::size_t pos);

/// True when the token at `pos` is reached through member access
/// (obj.name / obj->name), i.e. it is not the global/std function.
[[nodiscard]] bool member_access(const std::string& s, std::size_t pos);

/// True when an opening paren follows the token ending at `token_end`.
[[nodiscard]] bool followed_by_call(const std::string& s,
                                    std::size_t token_end);

/// True when the token at `pos` is preceded by another identifier that is
/// not `return` — i.e. it is being *declared* (`double time() const`), not
/// called (`return time(nullptr)`, `x = time(0)`).
[[nodiscard]] bool looks_like_declaration(const std::string& s,
                                          std::size_t pos);

/// Extracts the original characters of every literal inside the call whose
/// opening paren follows `token_end` (masked text drives paren matching, so
/// parens inside strings don't confuse it).
[[nodiscard]] std::string call_literal_text(const Source& src,
                                            std::size_t token_end);

/// Does printf-style format text contain a floating-point conversion?
[[nodiscard]] bool has_float_conversion(const std::string& fmt);

/// The identifiers on `text`, left to right (leading-digit runs skipped).
[[nodiscard]] std::vector<std::string> idents_on(const std::string& text);

}  // namespace ecotune::lint
