// ecotune determinism lint — repo-specific invariants no generic tool
// enforces. The scanner is lexical, not a full parser: it strips comments
// and string/char literals (preserving offsets), then matches tokens with
// identifier-boundary and member-access awareness. That keeps it fast,
// dependency-free, and immune to banned tokens appearing in strings or
// comments (including this file's own rule tables).
//
// Rules:
//   locale-number-io     C locale-dependent number parsing/formatting
//                        outside the common/ wrappers.
//   nondeterministic-seed
//                        entropy/clock seeding outside common/rng.
//   unordered-iteration  iterating an unordered container in a file that
//                        writes to an output sink (hash order would leak
//                        into byte-identical stdout).
//   raw-thread           raw std::thread / detached threads outside
//                        common/parallel (the pool owns the determinism
//                        contract: task-keyed RNG, ordered reductions).
//
// Waiver: a trailing comment on the flagged line of the form
//   // ecotune-lint: allow(<rule>[, <rule>...])  -- reason
// suppresses the named rules for that line only.

#include "lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ecotune::lint {
namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// The source after lexing: `masked` has every comment and string/char
/// literal replaced by spaces, byte-for-byte the same length as the
/// original so offsets agree between the two.
struct Source {
  std::string original;
  std::string masked;
  std::vector<std::size_t> line_starts;  ///< offset of each line's first byte
  std::map<int, std::set<std::string>> allows;  ///< line -> waived rules
};

int line_of(const Source& src, std::size_t offset) {
  const auto it = std::upper_bound(src.line_starts.begin(),
                                   src.line_starts.end(), offset);
  return static_cast<int>(it - src.line_starts.begin());
}

/// Parses "ecotune-lint: allow(a, b)" markers out of one comment's text and
/// registers the named rules as waived for every line the comment touches.
void harvest_allows(Source& src, const std::string& comment, int first_line,
                    int last_line) {
  const std::string tag = "ecotune-lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string::npos) return;
  pos = comment.find("allow(", pos);
  if (pos == std::string::npos) return;
  const std::size_t open = pos + 6;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string names = comment.substr(open, close - open);
  std::set<std::string> rules;
  std::istringstream is(names);
  std::string name;
  while (std::getline(is, name, ',')) {
    name.erase(0, name.find_first_not_of(" \t"));
    name.erase(name.find_last_not_of(" \t") + 1);
    if (!name.empty()) rules.insert(name);
  }
  for (int line = first_line; line <= last_line; ++line)
    src.allows[line].insert(rules.begin(), rules.end());
}

/// One-pass lexer: comments and literals become runs of spaces; newlines
/// survive so line numbers stay exact.
Source preprocess(const std::string& text) {
  Source src;
  src.original = text;
  src.masked = text;
  src.line_starts.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') src.line_starts.push_back(i + 1);

  std::string& m = src.masked;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && (text[i + 1] == '/' || text[i + 1] == '*')) {
      const bool block = text[i + 1] == '*';
      const int first_line = line_of(src, i);
      std::size_t end = i + 2;
      if (block) {
        while (end + 1 < n && !(text[end] == '*' && text[end + 1] == '/'))
          ++end;
        end = std::min(n, end + 2);
      } else {
        while (end < n && text[end] != '\n') ++end;
      }
      harvest_allows(src, text.substr(i, end - i), first_line,
                     line_of(src, end == 0 ? 0 : end - 1));
      for (std::size_t k = i; k < end; ++k)
        if (m[k] != '\n') m[k] = ' ';
      i = end;
      continue;
    }
    if (c == '"') {
      // Raw string?  R"delim( ... )delim"  (with optional u8/u/U/L prefix,
      // i.e. the identifier hugging the quote ends in R).
      bool raw = i > 0 && text[i - 1] == 'R' &&
                 (i < 2 || !is_ident(text[i - 2]) ||
                  text[i - 2] == 'u' || text[i - 2] == 'U' ||
                  text[i - 2] == 'L' || text[i - 2] == '8');
      std::size_t end;
      if (raw) {
        std::size_t p = i + 1;
        while (p < n && text[p] != '(') ++p;
        std::string closer;
        closer += ')';
        closer.append(text, i + 1, p - i - 1);
        closer += '"';
        const std::size_t at = text.find(closer, p);
        end = at == std::string::npos ? n : at + closer.size();
      } else {
        end = i + 1;
        while (end < n && text[end] != '"') {
          if (text[end] == '\\' && end + 1 < n) ++end;
          ++end;
        }
        end = std::min(n, end + 1);
      }
      for (std::size_t k = i; k < end; ++k)
        if (m[k] != '\n') m[k] = ' ';
      i = end;
      continue;
    }
    if (c == '\'') {
      // Distinguish char literals from digit separators (1'000, 0xFF'AA):
      // a quote glued to an identifier char is a separator unless that
      // char is a literal prefix (u, U, L, or the 8 of u8).
      const char prev = i > 0 ? text[i - 1] : '\0';
      const bool separator =
          is_ident(prev) && prev != 'u' && prev != 'U' && prev != 'L' &&
          !(prev == '8' && i > 1 && text[i - 2] == 'u');
      if (separator) {
        ++i;
        continue;
      }
      std::size_t end = i + 1;
      while (end < n && text[end] != '\'') {
        if (text[end] == '\\' && end + 1 < n) ++end;
        ++end;
      }
      end = std::min(n, end + 1);
      for (std::size_t k = i; k < end; ++k)
        if (m[k] != '\n') m[k] = ' ';
      i = end;
      continue;
    }
    ++i;
  }
  return src;
}

/// Occurrences of `word` as a whole identifier token.
std::vector<std::size_t> find_tokens(const std::string& s,
                                     const std::string& word) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= s.size() || !is_ident(s[after]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = after;
  }
  return out;
}

std::size_t prev_nonspace(const std::string& s, std::size_t pos) {
  while (pos > 0 && is_space(s[pos - 1])) --pos;
  return pos == 0 ? std::string::npos : pos - 1;
}

std::size_t next_nonspace(const std::string& s, std::size_t pos) {
  while (pos < s.size() && is_space(s[pos])) ++pos;
  return pos;
}

/// True when the token at `pos` is reached through member access
/// (obj.name / obj->name), i.e. it is not the global/std function.
bool member_access(const std::string& s, std::size_t pos) {
  const std::size_t p = prev_nonspace(s, pos);
  if (p == std::string::npos) return false;
  if (s[p] == '.') return true;
  return s[p] == '>' && p > 0 && s[p - 1] == '-';
}

bool followed_by_call(const std::string& s, std::size_t token_end) {
  const std::size_t p = next_nonspace(s, token_end);
  return p < s.size() && s[p] == '(';
}

/// True when the token at `pos` is preceded by another identifier that is
/// not `return` — i.e. it is being *declared* (`double time() const`), not
/// called (`return time(nullptr)`, `x = time(0)`).
bool looks_like_declaration(const std::string& s, std::size_t pos) {
  const std::size_t p = prev_nonspace(s, pos);
  if (p == std::string::npos || !is_ident(s[p])) return false;
  std::size_t b = p;
  while (b > 0 && is_ident(s[b - 1])) --b;
  return s.substr(b, p - b + 1) != "return";
}

/// Extracts the original characters of every literal inside the call whose
/// opening paren follows `token_end` (masked text drives paren matching, so
/// parens inside strings don't confuse it).
std::string call_literal_text(const Source& src, std::size_t token_end) {
  const std::string& m = src.masked;
  std::size_t p = next_nonspace(m, token_end);
  if (p >= m.size() || m[p] != '(') return {};
  int depth = 0;
  std::string out;
  for (; p < m.size(); ++p) {
    if (m[p] == '(') ++depth;
    if (m[p] == ')' && --depth == 0) break;
    // A masked byte that differs from the original is literal content.
    if (m[p] == ' ' && src.original[p] != ' ') out += src.original[p];
  }
  return out;
}

/// Does printf-style format text contain a floating-point conversion?
bool has_float_conversion(const std::string& fmt) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < fmt.size() && fmt[j] == '%') {
      i = j;
      continue;
    }
    while (j < fmt.size() &&
           (std::string("-+ #0'*.0123456789hlLqjzt").find(fmt[j]) !=
            std::string::npos))
      ++j;
    if (j < fmt.size() && std::string("aAeEfFgG").find(fmt[j]) !=
                              std::string::npos)
      return true;
    i = j;
  }
  return false;
}

void emit(std::vector<Diagnostic>& out, const Source& src, const
          std::string& path, std::size_t offset, const std::string& rule,
          std::string message) {
  const int line = line_of(src, offset);
  const auto it = src.allows.find(line);
  if (it != src.allows.end() && it->second.contains(rule)) return;
  out.push_back(Diagnostic{path, line, rule, std::move(message)});
}

// --------------------------------------------------------------------------
// Rule 1: locale-dependent number I/O outside the common/ wrappers.
// --------------------------------------------------------------------------
void check_locale_number_io(const Source& src, const std::string& path,
                            std::vector<Diagnostic>& out) {
  if (path.starts_with("src/common/")) return;
  static const char* const kParseFns[] = {
      "atoi",    "atof",    "atol",    "atoll",   "strtol",  "strtoll",
      "strtoul", "strtoull", "strtof", "strtod",  "strtold", "stoi",
      "stol",    "stoll",   "stoul",   "stoull",  "stof",    "stod",
      "stold",   "scanf",   "sscanf",  "fscanf",  "vsscanf"};
  for (const char* fn : kParseFns) {
    for (const std::size_t pos : find_tokens(src.masked, fn)) {
      if (member_access(src.masked, pos)) continue;
      if (looks_like_declaration(src.masked, pos)) continue;
      if (!followed_by_call(src.masked, pos + std::string(fn).size()))
        continue;
      emit(out, src, path, pos, "locale-number-io",
           std::string("'") + fn +
               "' parses numbers through the process locale; use the "
               "locale-independent wrappers (common/cli parse_strict_int, "
               "common/numbers parse_double, common/json, common/csv)");
    }
  }
  static const char* const kPrintfFns[] = {
      "printf",  "fprintf",  "sprintf", "snprintf",
      "vprintf", "vfprintf", "vsprintf", "vsnprintf"};
  for (const char* fn : kPrintfFns) {
    for (const std::size_t pos : find_tokens(src.masked, fn)) {
      if (member_access(src.masked, pos)) continue;
      const std::string fmt =
          call_literal_text(src, pos + std::string(fn).size());
      if (!has_float_conversion(fmt)) continue;
      emit(out, src, path, pos, "locale-number-io",
           std::string("'") + fn +
               "' with a floating-point conversion formats through the "
               "process locale; use common/numbers format_double or "
               "common/csv row_numeric");
    }
  }
}

// --------------------------------------------------------------------------
// Rule 2: entropy/clock seeding outside the common/rng seed plumbing.
// --------------------------------------------------------------------------
void check_nondeterministic_seed(const Source& src, const std::string& path,
                                 std::vector<Diagnostic>& out) {
  if (path.starts_with("src/common/rng.")) return;
  for (const std::size_t pos : find_tokens(src.masked, "random_device"))
    emit(out, src, path, pos, "nondeterministic-seed",
         "std::random_device draws fresh entropy per run; derive streams "
         "from a seeded common/rng Rng (Rng::fork) instead");
  static const char* const kClockFns[] = {"rand", "srand", "time",
                                          "gettimeofday", "clock"};
  for (const char* fn : kClockFns) {
    for (const std::size_t pos : find_tokens(src.masked, fn)) {
      if (member_access(src.masked, pos)) continue;
      if (looks_like_declaration(src.masked, pos)) continue;
      if (!followed_by_call(src.masked, pos + std::string(fn).size()))
        continue;
      emit(out, src, path, pos, "nondeterministic-seed",
           std::string("'") + fn +
               "(' injects wall-clock/libc entropy into the run; "
               "determinism-relevant randomness must flow from a seeded "
               "common/rng Rng");
    }
  }
}

// --------------------------------------------------------------------------
// Rule 3: unordered-container iteration in files that write output sinks.
// --------------------------------------------------------------------------
const std::set<std::string>& noise_idents() {
  static const std::set<std::string> kNoise = {
      "std",      "unordered_map", "unordered_set", "auto",     "const",
      "constexpr", "static",       "new",           "delete",   "using",
      "typedef",  "struct",        "class",         "public",   "private",
      "if",       "for",           "while",         "return",   "void",
      "int",      "bool",          "char",          "double",   "float",
      "unsigned", "long",          "size_t",        "uint64_t", "int64_t",
      "string",   "string_view",   "vector",        "pair",     "include",
      "pragma",   "once",          "namespace",     "template", "typename",
      "inline",   "mutable",       "this"};
  return kNoise;
}

std::vector<std::string> idents_on(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (is_ident(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      std::size_t j = i;
      while (j < text.size() && is_ident(text[j])) ++j;
      out.push_back(text.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

bool writes_output_sink(const Source& src) {
  const std::string& m = src.masked;
  if (!find_tokens(m, "cout").empty()) return true;
  for (const char* fn : {"printf", "puts"}) {
    for (const std::size_t pos : find_tokens(m, fn)) {
      if (member_access(m, pos)) continue;
      if (followed_by_call(m, pos + std::string(fn).size())) return true;
    }
  }
  for (const char* fn : {"fprintf", "fputs", "fwrite"}) {
    for (const std::size_t pos : find_tokens(m, fn)) {
      if (member_access(m, pos)) continue;
      // Stream-directed: only stdout counts as a determinism sink.
      const std::size_t stop = std::min(m.size(), pos + 200);
      if (m.find("stdout", pos) < stop) return true;
    }
  }
  return false;
}

void check_unordered_iteration(const Source& src, const std::string& path,
                               std::vector<Diagnostic>& out) {
  const std::string& m = src.masked;
  if (m.find("unordered_map") == std::string::npos &&
      m.find("unordered_set") == std::string::npos)
    return;
  if (!writes_output_sink(src)) return;

  // Candidate container names: every non-noise identifier appearing on a
  // line that mentions an unordered container type.
  std::set<std::string> candidates;
  std::size_t start = 0;
  for (std::size_t li = 0; li < src.line_starts.size(); ++li) {
    start = src.line_starts[li];
    const std::size_t end = li + 1 < src.line_starts.size()
                                ? src.line_starts[li + 1]
                                : m.size();
    const std::string line = m.substr(start, end - start);
    if (line.find("unordered_map") == std::string::npos &&
        line.find("unordered_set") == std::string::npos)
      continue;
    for (const std::string& id : idents_on(line))
      if (!noise_idents().contains(id)) candidates.insert(id);
  }

  // Range-for over a candidate (or over any expression spelling an
  // unordered container type directly).
  for (const std::size_t pos : find_tokens(m, "for")) {
    std::size_t p = next_nonspace(m, pos + 3);
    if (p >= m.size() || m[p] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos, close = std::string::npos;
    for (std::size_t k = p; k < m.size(); ++k) {
      if (m[k] == '(') ++depth;
      if (m[k] == ')' && --depth == 0) {
        close = k;
        break;
      }
      if (m[k] == ':' && depth == 1) {
        if (k + 1 < m.size() && m[k + 1] == ':') {
          ++k;
          continue;
        }
        if (k > 0 && m[k - 1] == ':') continue;
        if (colon == std::string::npos) colon = k;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = m.substr(colon + 1, close - colon - 1);
    const std::vector<std::string> ids = idents_on(range);
    const bool direct = range.find("unordered_") != std::string::npos;
    const bool named =
        !ids.empty() && candidates.contains(ids.front());
    if (direct || named) {
      emit(out, src, path, pos, "unordered-iteration",
           "range-for over unordered container" +
               (named ? " '" + ids.front() + "'" : std::string()) +
               " in a file that writes to an output sink; hash order is "
               "not deterministic — use std::map/std::set or sort first");
    }
  }

  // Explicit iterator walks: candidate.begin() / candidate.cbegin().
  for (const char* fn : {"begin", "cbegin"}) {
    for (const std::size_t pos : find_tokens(m, fn)) {
      if (!member_access(m, pos)) continue;
      if (!followed_by_call(m, pos + std::string(fn).size())) continue;
      std::size_t p = prev_nonspace(m, pos);  // '.' or '>'
      if (p == std::string::npos) continue;
      if (m[p] == '>') --p;  // '->'
      if (p == std::string::npos || p == 0) continue;
      std::size_t e = prev_nonspace(m, p);
      if (e == std::string::npos || !is_ident(m[e])) continue;
      std::size_t b = e;
      while (b > 0 && is_ident(m[b - 1])) --b;
      const std::string name = m.substr(b, e - b + 1);
      if (!candidates.contains(name)) continue;
      emit(out, src, path, pos, "unordered-iteration",
           "iterator walk over unordered container '" + name +
               "' in a file that writes to an output sink; hash order is "
               "not deterministic — use std::map/std::set or sort first");
    }
  }
}

// --------------------------------------------------------------------------
// Rule 4: raw std::thread / detached threads outside common/parallel.
// --------------------------------------------------------------------------
void check_raw_thread(const Source& src, const std::string& path,
                      std::vector<Diagnostic>& out) {
  if (path.starts_with("src/common/parallel.")) return;
  const std::string& m = src.masked;
  for (const char* cls : {"thread", "jthread"}) {
    for (const std::size_t pos : find_tokens(m, cls)) {
      // Only the std:: spellings; a member named `thread` is fine.
      if (pos < 2 || m[pos - 1] != ':' || m[pos - 2] != ':') continue;
      std::size_t b = pos - 2;
      std::size_t e = prev_nonspace(m, b);
      if (e == std::string::npos) continue;
      std::size_t s = e;
      while (s > 0 && is_ident(m[s - 1])) --s;
      if (m.substr(s, e - s + 1) != "std") continue;
      emit(out, src, path, pos, "raw-thread",
           std::string("std::") + cls +
               " outside common/parallel; route concurrency through "
               "ThreadPool/parallel_for_each so task-keyed RNG and "
               "ordered reductions keep output jobs-invariant");
    }
  }
  for (const std::size_t pos : find_tokens(m, "detach")) {
    if (!member_access(m, pos)) continue;
    if (!followed_by_call(m, pos + 6)) continue;
    emit(out, src, path, pos, "raw-thread",
         "detached threads outlive the scope that can join them; "
         "common/parallel owns every worker's lifetime");
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules = {
      "locale-number-io", "nondeterministic-seed", "unordered-iteration",
      "raw-thread"};
  return kRules;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& text) {
  const Source src = preprocess(text);
  std::vector<Diagnostic> out;
  check_locale_number_io(src, path, out);
  check_nondeterministic_seed(src, path, out);
  check_unordered_iteration(src, path, out);
  check_raw_thread(src, path, out);
  std::sort(out.begin(), out.end(), [](const Diagnostic& a,
                                       const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<std::filesystem::path> default_scan_set(
    const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "bench", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Diagnostic> lint_files(
    const std::filesystem::path& root,
    const std::vector<std::filesystem::path>& files) {
  namespace fs = std::filesystem;
  std::vector<Diagnostic> out;
  for (const fs::path& file : files) {
    std::ifstream is(file, std::ios::binary);
    if (!is.good())
      throw std::runtime_error("ecotune_lint: cannot read '" +
                               file.string() + "'");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const fs::path rel = file.lexically_proximate(root);
    const std::string reported =
        rel.empty() || rel.generic_string().starts_with("..")
            ? file.generic_string()
            : rel.generic_string();
    const auto found = lint_source(reported, buffer.str());
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ':' << d.line << ": error: [" << d.rule << "] "
     << d.message;
  return os.str();
}

int exit_code(const std::vector<Diagnostic>& diagnostics) {
  return diagnostics.empty() ? 0 : 1;
}

}  // namespace ecotune::lint
