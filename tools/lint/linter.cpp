#include "lint/linter.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/parallel.hpp"
#include "lint/source.hpp"

namespace ecotune::lint {

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(rules().size());
    for (const Rule& rule : rules()) names.push_back(rule.name);
    return names;
  }();
  return kNames;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& text) {
  const Source src = preprocess(text);
  std::vector<Diagnostic> out;
  for (const Rule& rule : rules()) rule.check(src, path, out);
  std::sort(out.begin(), out.end(), [](const Diagnostic& a,
                                       const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<std::filesystem::path> default_scan_set(
    const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "bench", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Diagnostic> lint_files(
    const std::filesystem::path& root,
    const std::vector<std::filesystem::path>& files, int jobs) {
  namespace fs = std::filesystem;
  // Each file is lexed and checked independently (rule checks are pure),
  // so the map parallelizes; the ordered reduction keeps diagnostics in
  // file order regardless of completion order — the byte-identity
  // contract the --jobs tests pin.
  auto per_file = parallel_map_ordered(
      files.size(),
      [&](std::size_t i) -> std::vector<Diagnostic> {
        const fs::path& file = files[i];
        std::ifstream is(file, std::ios::binary);
        if (!is.good())
          throw std::runtime_error("ecotune_lint: cannot read '" +
                                   file.string() + "'");
        std::ostringstream buffer;
        buffer << is.rdbuf();
        const fs::path rel = file.lexically_proximate(root);
        const std::string reported =
            rel.empty() || rel.generic_string().starts_with("..")
                ? file.generic_string()
                : rel.generic_string();
        return lint_source(reported, buffer.str());
      },
      jobs);
  std::vector<Diagnostic> out;
  for (auto& found : per_file)
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  return out;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ':' << d.line << ": error: [" << d.rule << "] "
     << d.message;
  return os.str();
}

int exit_code(const std::vector<Diagnostic>& diagnostics) {
  return diagnostics.empty() ? 0 : 1;
}

}  // namespace ecotune::lint
