#include "lint/include_graph.hpp"

namespace ecotune::lint {

const std::map<std::string, std::set<std::string>>& module_dag() {
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"common", {}},
      {"hwsim", {"common"}},
      {"stats", {"common"}},
      {"store", {"common"}},
      {"nn", {"common", "stats"}},
      {"energymon", {"common", "hwsim"}},
      {"pmc", {"common", "hwsim"}},
      {"workload", {"common", "hwsim"}},
      {"instr", {"common", "hwsim", "workload"}},
      {"readex", {"common", "instr", "workload"}},
      {"trace", {"common", "instr", "pmc"}},
      {"ptf", {"common", "hwsim", "instr", "store", "workload"}},
      {"baseline", {"common", "hwsim", "instr", "ptf", "store", "workload"}},
      {"model",
       {"common", "hwsim", "instr", "nn", "pmc", "stats", "store", "trace",
        "workload"}},
      {"core",
       {"baseline", "common", "energymon", "hwsim", "instr", "model", "ptf",
        "readex", "store", "workload"}},
      {"tuners",
       {"baseline", "common", "core", "hwsim", "instr", "ptf", "store",
        "workload"}},
      {"api",
       {"baseline", "common", "core", "hwsim", "model", "ptf", "store",
        "tuners", "workload"}},
      {"serve", {"api", "common", "core", "store", "workload"}},
  };
  return kDag;
}

std::vector<std::string> module_names() {
  std::vector<std::string> names;
  names.reserve(module_dag().size());
  for (const auto& [name, deps] : module_dag()) names.push_back(name);
  return names;  // std::map iterates lexicographically
}

std::string module_of(const std::string& path) {
  const std::string prefix = "src/";
  if (!path.starts_with(prefix)) return {};
  const std::size_t slash = path.find('/', prefix.size());
  if (slash == std::string::npos) return {};
  const std::string module = path.substr(prefix.size(),
                                         slash - prefix.size());
  return module_dag().contains(module) ? module : std::string{};
}

bool edge_allowed(const std::string& from, const std::string& to) {
  if (from == to) return true;
  const auto it = module_dag().find(from);
  return it != module_dag().end() && it->second.contains(to);
}

}  // namespace ecotune::lint
