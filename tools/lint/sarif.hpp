#pragma once

// SARIF 2.1.0 emitter for the ecotune analysis framework. Hand-rolled
// serialization (no common/json dependency) so ecotune_lint stays
// buildable before any module library is — the golden test round-trips
// the output through common/json to prove it parses.

#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace ecotune::lint {

/// The complete SARIF 2.1.0 log for one run: tool.driver carries every
/// registered rule (id, severity, summary, helpUri); each diagnostic
/// becomes one result with ruleId, ruleIndex into that rules array,
/// level, message, and a physical location (uri + 1-based startLine).
/// Deterministic: byte-identical for identical diagnostics.
[[nodiscard]] std::string sarif_report(
    const std::vector<Diagnostic>& diagnostics);

}  // namespace ecotune::lint
