// Developer calibration harness: exhaustively searches (threads, CF, UCF)
// per benchmark against the ground-truth simulator and prints the optimum
// plus per-region optima, so workload parameters can be tuned to land near
// the paper's Table V / Table III / Table IV values. Not part of the
// published benches; see bench/ for the reproduction harnesses.
#include <iostream>
#include <limits>
#include <vector>

#include "common/table.hpp"
#include "hwsim/node.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

namespace {

struct Config {
  int threads;
  CoreFreq cf;
  UncoreFreq ucf;
};

struct Sample {
  double node_energy;
  double cpu_energy;
  double time;
};

Sample eval_regions(hwsim::NodeSimulator& node,
                    const std::vector<workload::Region>& regions, int threads,
                    bool significant_only) {
  Sample s{0, 0, 0};
  for (const auto& r : regions) {
    if (significant_only && r.traits.total_instructions < 1e9) continue;
    const auto res = node.run_kernel(r.traits, threads);
    s.node_energy += res.node_energy.value() * r.calls_per_iteration;
    s.cpu_energy += res.cpu_energy.value() * r.calls_per_iteration;
    s.time += res.time.value() * r.calls_per_iteration;
  }
  return s;
}

}  // namespace

int main() {
  const hwsim::CpuSpec spec = hwsim::haswell_ep_spec();
  hwsim::NodeSimulator node(spec, 0, Rng(42));
  node.set_jitter(0.0);

  const std::vector<int> threads_grid{12, 16, 20, 24};

  TextTable table("Ground-truth optima (node energy objective)");
  table.header({"benchmark", "thr", "CF", "UCF", "E vs default", "T vs default",
                "E@default(J)"});

  for (const auto& bench : workload::BenchmarkSuite::all()) {
    // Default configuration reference.
    node.set_all_core_freqs(spec.default_core);
    node.set_all_uncore_freqs(spec.default_uncore);
    const Sample def = eval_regions(node, bench.regions(), 24, false);

    double best_e = std::numeric_limits<double>::max();
    Config best{24, spec.default_core, spec.default_uncore};
    Sample best_s{};
    for (int t : threads_grid) {
      for (auto cf : spec.core_grid.values()) {
        node.set_all_core_freqs(cf);
        for (auto ucf : spec.uncore_grid.values()) {
          node.set_all_uncore_freqs(ucf);
          const Sample s = eval_regions(node, bench.regions(), t, false);
          if (s.node_energy < best_e) {
            best_e = s.node_energy;
            best = {t, cf, ucf};
            best_s = s;
          }
        }
      }
    }
    table.row({bench.name(), std::to_string(best.threads),
               to_string(best.cf), to_string(best.ucf),
               TextTable::pct((best_s.node_energy / def.node_energy - 1) * 100),
               TextTable::pct((best_s.time / def.time - 1) * 100),
               TextTable::num(def.node_energy, 1)});
  }
  table.print(std::cout);

  // Per-region optima for the five evaluation benchmarks (compare with
  // paper Tables III and IV; unconstrained search here).
  for (const auto& name : workload::BenchmarkSuite::evaluation_names()) {
    const auto& bench = workload::BenchmarkSuite::by_name(name);
    TextTable rt("Per-region ground-truth optima: " + name);
    rt.header({"region", "thr", "CF", "UCF", "T@default(ms)"});
    for (const auto& r : bench.regions()) {
      if (r.traits.total_instructions < 1e9) continue;
      double best_e = std::numeric_limits<double>::max();
      Config best{24, spec.default_core, spec.default_uncore};
      for (int t : threads_grid) {
        for (auto cf : spec.core_grid.values()) {
          node.set_all_core_freqs(cf);
          for (auto ucf : spec.uncore_grid.values()) {
            node.set_all_uncore_freqs(ucf);
            const auto res = node.run_kernel(r.traits, t);
            if (res.node_energy.value() < best_e) {
              best_e = res.node_energy.value();
              best = {t, cf, ucf};
            }
          }
        }
      }
      node.set_all_core_freqs(spec.default_core);
      node.set_all_uncore_freqs(spec.default_uncore);
      const auto dres = node.run_kernel(r.traits, 24);
      rt.row({r.name, std::to_string(best.threads), to_string(best.cf),
              to_string(best.ucf),
              TextTable::num(dres.time.value() * 1e3, 1)});
    }
    rt.print(std::cout);
  }
  return 0;
}
