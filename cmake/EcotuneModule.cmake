# Shared build logic for ecotune module libraries and executables.
#
# Every src/<module>/ directory declares one static library through
# ecotune_add_module(), which owns the common include root (src/), the
# warning set, and sanitizer wiring so the per-module CMakeLists stay
# declarative: sources + explicit inter-module dependencies only.

# One interface target carries the warning/sanitizer flags so they apply
# uniformly to module libs, tests, benches, examples, and tools.
if(NOT TARGET ecotune_build_flags)
  add_library(ecotune_build_flags INTERFACE)
  add_library(ecotune::build_flags ALIAS ecotune_build_flags)
  # The module libs link this PRIVATE, which still records a $<LINK_ONLY:>
  # reference in their export information; ship the (artifact-free)
  # interface target in the same export set so install(EXPORT) resolves.
  install(TARGETS ecotune_build_flags EXPORT ecotune-targets)

  if(CMAKE_CXX_COMPILER_ID STREQUAL "MSVC")
    target_compile_options(ecotune_build_flags INTERFACE /W4)
    if(ECOTUNE_WERROR)
      target_compile_options(ecotune_build_flags INTERFACE /WX)
    endif()
  else()
    target_compile_options(ecotune_build_flags INTERFACE -Wall -Wextra)
    if(ECOTUNE_WERROR)
      target_compile_options(ecotune_build_flags INTERFACE -Werror)
    endif()
    # Clang proves the tree's lock discipline from the annotations in
    # common/thread_annotations.hpp; any unguarded access to a GUARDED_BY
    # member is a hard build error in the CI clang lane. GCC has no such
    # analysis and compiles the no-op macro branch.
    if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      target_compile_options(ecotune_build_flags INTERFACE
        -Wthread-safety -Werror=thread-safety)
    endif()
  endif()

  if(ECOTUNE_DCHECKS)
    target_compile_definitions(ecotune_build_flags INTERFACE
      ECOTUNE_ENABLE_DCHECKS)
  endif()

endif()

# Sanitizer flags are ABI-affecting: an archive built with
# -fsanitize=address references __asan_* symbols, so anything linking it
# must pass the same flag. They therefore live on their own interface
# target that module libs link PUBLIC — unlike the PRIVATE warning flags
# above, whose $<LINK_ONLY:> export entry drops INTERFACE_LINK_OPTIONS
# and would leave an installed sanitized package unlinkable
# (package_config_check caught exactly that under ASan).
if(NOT TARGET ecotune_abi_flags)
  add_library(ecotune_abi_flags INTERFACE)
  add_library(ecotune::abi_flags ALIAS ecotune_abi_flags)
  install(TARGETS ecotune_abi_flags EXPORT ecotune-targets)
  # In-tree targets reach these flags through build_flags as well, so
  # tools that link no module lib still build sanitized.
  target_link_libraries(ecotune_build_flags INTERFACE ecotune_abi_flags)

  if(ECOTUNE_SANITIZE)
    string(REPLACE "," ";" _ecotune_san_list "${ECOTUNE_SANITIZE}")
    if(CMAKE_CXX_COMPILER_ID STREQUAL "MSVC")
      message(FATAL_ERROR
        "ECOTUNE_SANITIZE is only supported with GCC/Clang (got MSVC)")
    endif()
    set(_ecotune_known_sans address leak undefined thread)
    foreach(_san IN LISTS _ecotune_san_list)
      if(NOT _san IN_LIST _ecotune_known_sans)
        message(FATAL_ERROR
          "ECOTUNE_SANITIZE: unknown sanitizer '${_san}' "
          "(supported: address, leak, undefined, thread)")
      endif()
    endforeach()
    if("thread" IN_LIST _ecotune_san_list AND
       ("address" IN_LIST _ecotune_san_list OR
        "leak" IN_LIST _ecotune_san_list))
      message(FATAL_ERROR
        "ECOTUNE_SANITIZE: 'thread' cannot be combined with "
        "'address'/'leak' — run them as separate build trees "
        "(the CI matrix does exactly that)")
    endif()
    string(REPLACE ";" "," _ecotune_san_csv "${_ecotune_san_list}")
    target_compile_options(ecotune_abi_flags INTERFACE
      -fsanitize=${_ecotune_san_csv} -fno-omit-frame-pointer)
    target_link_options(ecotune_abi_flags INTERFACE
      -fsanitize=${_ecotune_san_csv})
    if("undefined" IN_LIST _ecotune_san_list)
      # By default UBSan reports and keeps going with exit code 0, which
      # would let ctest pass over real findings. Make every report fatal.
      target_compile_options(ecotune_abi_flags INTERFACE
        -fno-sanitize-recover=all)
      target_link_options(ecotune_abi_flags INTERFACE
        -fno-sanitize-recover=all)
    endif()
    message(STATUS "Sanitizers enabled: ${_ecotune_san_csv}")
  endif()
endif()

# ecotune_add_module(<name> SOURCES <src...> [DEPS <module...>])
#
# Defines STATIC library ecotune_<name> (alias ecotune::<name>) rooted at
# src/, linking the listed sibling modules PUBLIC so transitive include
# paths and link order resolve automatically.
function(ecotune_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "ecotune_add_module(${name}): SOURCES is required")
  endif()

  set(target ecotune_${name})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(ecotune::${name} ALIAS ${target})

  # Build against the source tree; installed consumers resolve the same
  # "module/header.hpp" spellings under <prefix>/include/ecotune.
  target_include_directories(${target} PUBLIC
    $<BUILD_INTERFACE:${PROJECT_SOURCE_DIR}/src>
    $<INSTALL_INTERFACE:${CMAKE_INSTALL_INCLUDEDIR}/ecotune>)
  target_link_libraries(${target} PRIVATE ecotune::build_flags)
  # PUBLIC so the exported package propagates the sanitizer usage
  # requirements to out-of-tree consumers (see ecotune_abi_flags above).
  target_link_libraries(${target} PUBLIC ecotune::abi_flags)
  foreach(dep IN LISTS ARG_DEPS)
    target_link_libraries(${target} PUBLIC ecotune_${dep})
  endforeach()

  install(TARGETS ${target} EXPORT ecotune-targets
    ARCHIVE DESTINATION ${CMAKE_INSTALL_LIBDIR})
endfunction()

# ecotune_add_executable(<name> SOURCES <src...> [DEPS <target...>])
#
# Defines an executable with the shared flags, linking the full ecotune
# aggregate by default plus any extra targets (e.g. bench support lib).
function(ecotune_add_executable name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "ecotune_add_executable(${name}): SOURCES is required")
  endif()

  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE ecotune::ecotune ecotune::build_flags ${ARG_DEPS})
endfunction()
